// Package wal implements the durable reward journal: a segmented
// append-only log with CRC32-framed binary records, group-commit
// fsync batching, tail-corruption recovery, and prefix truncation for
// snapshot compaction. The package is payload-agnostic — record
// semantics (rank events, reward batches, train marks) live in
// qoadvisor/internal/bandit — so the log can carry any telemetry the
// serving stack needs to survive a crash.
//
// On-disk layout: the journal is a directory of numbered segment
// files, wal-<index>.seg. Each segment starts with a 16-byte header
// (8-byte magic, 8-byte little-endian first LSN) followed by records
// framed as
//
//	[uint32 payload length][uint32 CRC32-Castagnoli of payload][payload]
//
// Log sequence numbers (LSNs) are assigned densely from 1 at append
// time; a record's LSN is the segment's first LSN plus its index in
// the segment, so positions never need to be stored per record.
//
// Durability model: Append always just buffers (so hot paths — the
// bandit's rank logging under its event-log mutex — never wait on the
// disk); Commit(lsn) applies the configured mode. ModeSync blocks the
// caller until a group fsync covers lsn (concurrent committers share
// one fsync — the group-commit window is what keeps per-record sync
// cost amortized). ModeAsync returns immediately and lets the
// background committer flush on its time/count window. ModeOff never
// fsyncs at all (buffers still flush so readers see the data).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the durability discipline Commit applies.
type Mode int

const (
	// ModeAsync (default): Commit returns immediately; the background
	// committer fsyncs on the group-commit window. A crash can lose at
	// most the last window of acknowledged records.
	ModeAsync Mode = iota
	// ModeSync: Commit blocks until the record is fsynced. Concurrent
	// commits share one fsync (group commit).
	ModeSync
	// ModeOff: no fsync ever — durability is whatever the OS page cache
	// survives. For benchmarks and tests.
	ModeOff
)

// String renders the flag form.
func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeOff:
		return "off"
	default:
		return "async"
	}
}

// ParseMode parses the flag form ("sync", "async", "off").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "sync":
		return ModeSync, nil
	case "async", "":
		return ModeAsync, nil
	case "off":
		return ModeOff, nil
	}
	return ModeAsync, fmt.Errorf("wal: unknown sync mode %q (want sync, async, or off)", s)
}

const (
	segMagic      = "QOWAL001"
	segHeaderSize = 16
	recHeaderSize = 8
	segPrefix     = "wal-"
	segSuffix     = ".seg"

	// MaxRecordSize bounds one payload; a length prefix beyond it is
	// treated as corruption, not an allocation request.
	MaxRecordSize = 16 << 20

	// DefaultSegmentBytes rolls segments at 64 MiB.
	DefaultSegmentBytes = 64 << 20
	// DefaultFlushEvery is the group-commit window: in async mode the
	// crash-loss bound for acknowledged records, in sync mode the
	// latency floor idle commits can wait. 5ms trades a slightly wider
	// async loss window for ~4x fewer fsyncs under rank-heavy load
	// (each in-window fsync steals ~0.2-0.4ms from the serving path on
	// a small host).
	DefaultFlushEvery = 5 * time.Millisecond
	// DefaultFlushBatch forces a flush after this many buffered records
	// even inside the window, bounding buffered bytes under burst load.
	DefaultFlushBatch = 1024
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options parameterizes Open.
type Options struct {
	// Dir is the journal directory (created if absent).
	Dir string
	// Mode is the Commit durability discipline.
	Mode Mode
	// SegmentBytes rolls to a new segment once the active one exceeds
	// this size (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// FlushEvery is the group-commit window (0 = DefaultFlushEvery).
	FlushEvery time.Duration
	// FlushBatch forces a flush after this many buffered records
	// (0 = DefaultFlushBatch).
	FlushBatch int
}

// Stats is a point-in-time snapshot of the journal counters.
type Stats struct {
	Mode          string
	FirstLSN      uint64 // oldest retained record (0 when empty)
	LastLSN       uint64 // newest appended record (0 when empty)
	SyncedLSN     uint64 // newest record covered by a flush (+fsync outside ModeOff)
	Appends       int64
	AppendedBytes int64
	Syncs         int64
	Segments      int
	TruncatedSegs int64
}

// segment is one on-disk file of the journal.
type segment struct {
	path     string
	index    uint64
	firstLSN uint64
}

// WAL is an open journal. Safe for concurrent use.
type WAL struct {
	opts Options

	mu   sync.Mutex
	cond *sync.Cond // broadcast when syncedLSN advances or the WAL closes
	f    *os.File   // active segment
	bw   *bufio.Writer
	segs []segment // ascending; last is active

	nextLSN   uint64
	syncedLSN uint64
	segBytes  int64 // bytes written to the active segment
	unflushed int   // records buffered since the last flush kick
	syncing   bool  // an fsync is in flight outside mu (single-flight)
	closed    bool
	err       error // latched fatal I/O error: the journal is fail-stop

	// tornBytes/tornErr record tail damage Open truncated away (a crash
	// mid-append); immutable after Open.
	tornBytes int64
	tornErr   error

	appends       int64
	appendedBytes int64
	syncs         int64
	truncatedSegs int64

	// syncObs, when set, observes each fsync's wall duration (the
	// group-commit stall budget) — the serving layer points it at a
	// latency histogram. Stored atomically so it can be attached after
	// Open without racing the committer.
	syncObs atomic.Pointer[func(time.Duration)]

	// faults, when set, is the chaos-test fault-injection plan (see
	// Faults); nil in production.
	faults atomic.Pointer[Faults]

	flushCh chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

// SetSyncObserver installs a callback observing every fsync's
// duration (called off the append path, on the committer or a
// sync-mode Commit waiter). Pass the observing end of a latency
// histogram; nil removes the observer.
func (w *WAL) SetSyncObserver(fn func(time.Duration)) {
	if fn == nil {
		w.syncObs.Store(nil)
		return
	}
	w.syncObs.Store(&fn)
}

// observeSync times one fsync call through the installed observer.
func (w *WAL) observeSync(f *os.File) error {
	w.injectSyncDelay()
	obs := w.syncObs.Load()
	if obs == nil {
		return f.Sync()
	}
	start := time.Now()
	err := f.Sync()
	(*obs)(time.Since(start))
	return err
}

// Open opens (or creates) the journal in opts.Dir, recovering from a
// torn tail: a final record cut mid-write is truncated away so appends
// resume at a clean boundary. Returns the WAL positioned after the
// last valid record.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = DefaultFlushEvery
	}
	if opts.FlushBatch <= 0 {
		opts.FlushBatch = DefaultFlushBatch
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := scanDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		opts:    opts,
		segs:    segs,
		flushCh: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)

	if len(segs) == 0 {
		w.nextLSN = 1
		if err := w.openSegmentLocked(1, 1); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		count, validEnd, tailErr, serr := scanSegment(last.path, last.firstLSN, nil)
		if serr != nil {
			return nil, serr
		}
		fi, err := os.Stat(last.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if fi.Size() > validEnd {
			// Torn tail from a crash mid-append: cut back to the last
			// whole record so new appends start at a clean frame. The
			// damage is recorded so the operator can be told data past
			// the durable frontier was discarded (TailDamage).
			if err := os.Truncate(last.path, validEnd); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.path, err)
			}
			w.tornBytes = fi.Size() - validEnd
			w.tornErr = tailErr
		}
		f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, 1<<16)
		w.segBytes = validEnd
		w.nextLSN = last.firstLSN + uint64(count)
	}
	w.syncedLSN = w.nextLSN - 1

	w.wg.Add(1)
	go w.committer()
	return w, nil
}

// scanDir lists and orders the journal's segment files.
func scanDir(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue // not ours
		}
		path := filepath.Join(dir, name)
		first, err := readSegmentHeader(path)
		if err != nil {
			return nil, err
		}
		segs = append(segs, segment{path: path, index: idx, firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for i := 1; i < len(segs); i++ {
		if segs[i].firstLSN < segs[i-1].firstLSN {
			return nil, fmt.Errorf("wal: segment %s first LSN %d below predecessor's %d",
				segs[i].path, segs[i].firstLSN, segs[i-1].firstLSN)
		}
	}
	return segs, nil
}

func readSegmentHeader(path string) (firstLSN uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %s: short segment header: %w", path, err)
	}
	if string(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("wal: %s: bad segment magic %q", path, hdr[:8])
	}
	return binary.LittleEndian.Uint64(hdr[8:]), nil
}

// openSegmentLocked creates and switches to a fresh segment; callers
// hold mu (or are inside Open before the WAL is shared).
func (w *WAL) openSegmentLocked(index, firstLSN uint64) error {
	path := filepath.Join(w.opts.Dir, fmt.Sprintf("%s%016d%s", segPrefix, index, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segBytes = segHeaderSize
	if len(w.segs) == 0 || w.segs[len(w.segs)-1].index != index {
		w.segs = append(w.segs, segment{path: path, index: index, firstLSN: firstLSN})
	}
	return nil
}

// maybeRoll seals the active segment and opens the next one when the
// size threshold is crossed. It runs on the committer goroutine, never
// on an appender: the swap to the fresh segment happens under mu (a
// few file-table operations, no disk sync), and the sealed file's
// fsync runs OUTSIDE the lock — appends continue into the new segment
// while the old one is made durable, so a segment roll never stalls
// the rank path. Overshoot past SegmentBytes is bounded by one
// group-commit window of appends (Append kicks the committer as soon
// as the threshold is crossed).
func (w *WAL) maybeRoll() error {
	w.mu.Lock()
	for w.syncing && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil || w.closed || w.f == nil || w.segBytes < w.opts.SegmentBytes {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		w.cond.Broadcast()
		w.mu.Unlock()
		return err
	}
	old := w.f
	sealedLast := w.nextLSN - 1 // every record in the sealed segment
	next := w.segs[len(w.segs)-1].index + 1
	if err := w.openSegmentLocked(next, w.nextLSN); err != nil {
		// openSegmentLocked leaves w.f/w.bw untouched on failure, so
		// appends keep landing in the (oversized) old segment.
		w.err = err
		w.cond.Broadcast()
		w.mu.Unlock()
		return err
	}
	w.unflushed = 0
	w.syncing = true
	w.mu.Unlock()

	var serr error
	if w.opts.Mode != ModeOff {
		serr = w.observeSync(old)
	}
	syncDir(w.opts.Dir)
	if cerr := old.Close(); serr == nil {
		serr = cerr
	}

	w.mu.Lock()
	w.syncing = false
	if serr != nil {
		w.err = serr
	} else if sealedLast > w.syncedLSN {
		w.syncedLSN = sealedLast
		if w.opts.Mode != ModeOff {
			w.syncs++
		}
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return serr
}

// Append frames and buffers one record, returning its LSN. It never
// waits for the disk — pair it with Commit for durability. After a
// latched I/O error every Append fails: the journal is fail-stop so a
// sick disk surfaces as rejected writes, not silent data loss.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), MaxRecordSize)
	}
	if err := w.injectAppend(payload); err != nil {
		return 0, err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, errors.New("wal: closed")
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.bw.Write(hdr[:]); err == nil {
		_, err = w.bw.Write(payload)
		if err != nil {
			w.err = err
		}
	} else {
		w.err = err
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	lsn := w.nextLSN
	w.nextLSN++
	n := int64(recHeaderSize + len(payload))
	w.segBytes += n
	w.appends++
	w.appendedBytes += n
	w.unflushed++
	// Kick the committer on a full flush batch or a segment crossing
	// the roll threshold; both are handled off the append path.
	kick := w.unflushed >= w.opts.FlushBatch || w.segBytes >= w.opts.SegmentBytes
	if w.unflushed >= w.opts.FlushBatch {
		w.unflushed = 0
	}
	w.mu.Unlock()
	if kick {
		w.kick()
	}
	return lsn, nil
}

// kick nudges the committer without blocking.
func (w *WAL) kick() {
	select {
	case w.flushCh <- struct{}{}:
	default:
	}
}

// Commit makes the record at lsn durable per the configured mode:
// ModeSync waits for a (group) fsync to cover it, ModeAsync and
// ModeOff return immediately.
func (w *WAL) Commit(lsn uint64) error {
	switch w.opts.Mode {
	case ModeOff, ModeAsync:
		w.mu.Lock()
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.kick()
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedLSN < lsn && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.syncedLSN < lsn {
		return errors.New("wal: closed before commit")
	}
	return nil
}

// Sync forces an immediate flush (+fsync outside ModeOff) of
// everything appended so far — the checkpoint barrier's durability
// point.
func (w *WAL) Sync() error { return w.syncNow() }

// committer is the group-commit loop: it batches fsyncs on a
// time/count window so concurrent committers amortize sync cost.
func (w *WAL) committer() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-w.flushCh:
		case <-t.C:
		}
		w.maybeRoll()
		w.syncNow()
	}
}

// syncNow flushes the buffer and (outside ModeOff) fsyncs the active
// segment, then wakes Commit waiters. The fsync itself runs OUTSIDE
// mu — only the cheap buffer flush holds the lock — so a slow disk
// never stalls the append hot path (the bandit journals rank records
// under its event-log mutex; an fsync-under-mu would transitively
// freeze ranking for the sync's duration). A single-flight flag keeps
// one fsync in flight; later callers wait and re-check coverage.
func (w *WAL) syncNow() error {
	w.mu.Lock()
	for w.syncing && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil || w.f == nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	target := w.nextLSN - 1
	if target <= w.syncedLSN {
		w.mu.Unlock()
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		w.cond.Broadcast()
		w.mu.Unlock()
		return err
	}
	w.unflushed = 0
	if w.opts.Mode == ModeOff {
		w.syncedLSN = target
		w.syncs++
		w.cond.Broadcast()
		w.mu.Unlock()
		return nil
	}
	f := w.f
	w.syncing = true
	w.mu.Unlock()

	serr := w.observeSync(f)

	w.mu.Lock()
	w.syncing = false
	if serr != nil {
		w.err = serr
	} else if target > w.syncedLSN {
		w.syncedLSN = target
		w.syncs++
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return serr
}

// SyncedLSN returns the durable frontier: the newest LSN covered by a
// flush (+fsync outside ModeOff). Replication ships records only up to
// this point, so a follower can never hold a record the primary could
// still lose in a crash.
func (w *WAL) SyncedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncedLSN
}

// WaitLSN blocks until the durable frontier reaches lsn, the timeout
// elapses, the journal closes, or an I/O error latches — whichever
// comes first — and returns the frontier it observed. It kicks the
// committer so a quiet journal does not sit out a full group-commit
// window before the waiter sees fresh records; this is the long-poll
// primitive under the replication stream's tail.
func (w *WAL) WaitLSN(lsn uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	w.kick()
	w.mu.Lock()
	defer w.mu.Unlock()
	var timerArmed bool
	var timer *time.Timer
	for w.syncedLSN < lsn && w.err == nil && !w.closed {
		if time.Now().After(deadline) {
			break
		}
		if !timerArmed {
			// cond.Wait has no deadline; a one-shot timer broadcast wakes
			// every waiter at this waiter's deadline (spurious wakes for
			// others are re-checked and slept through).
			timerArmed = true
			timer = time.AfterFunc(time.Until(deadline), func() {
				w.mu.Lock()
				w.cond.Broadcast()
				w.mu.Unlock()
			})
			defer timer.Stop()
		}
		w.cond.Wait()
	}
	return w.syncedLSN
}

// TailDamage reports the torn or corrupt tail Open found and truncated
// away (0, nil when the journal ended cleanly). A non-zero result
// means a crash cut an append short: records past the last durable
// group commit were discarded — the bounded loss the sync mode
// contract allows, but worth an operator's log line.
func (w *WAL) TailDamage() (bytes int64, reason error) {
	return w.tornBytes, w.tornErr
}

// FirstLSN returns the oldest retained LSN (0 when the log is empty).
func (w *WAL) FirstLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.segs) == 0 || w.nextLSN == w.segs[0].firstLSN {
		return 0
	}
	return w.segs[0].firstLSN
}

// LastLSN returns the newest appended LSN (0 when the log is empty).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// Dir returns the journal directory — what an audit engine opens
// read-only beside a live WAL.
func (w *WAL) Dir() string { return w.opts.Dir }

// TruncateBefore removes sealed segments every record of which has
// LSN <= lsn — the compaction step after a snapshot covers them. The
// active segment is never removed. Returns how many segments were
// deleted.
func (w *WAL) TruncateBefore(lsn uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segs) > 1 && w.segs[1].firstLSN <= lsn+1 {
		if err := os.Remove(w.segs[0].path); err != nil && !errors.Is(err, os.ErrNotExist) {
			break
		}
		// The audit index sidecar is derived from the segment; remove it
		// alongside so compaction never leaves orphans.
		os.Remove(SidecarPath(w.segs[0].path))
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		w.truncatedSegs += int64(removed)
		syncDir(w.opts.Dir)
	}
	return removed
}

// Stats snapshots the journal counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Mode:          w.opts.Mode.String(),
		LastLSN:       w.nextLSN - 1,
		SyncedLSN:     w.syncedLSN,
		Appends:       w.appends,
		AppendedBytes: w.appendedBytes,
		Syncs:         w.syncs,
		Segments:      len(w.segs),
		TruncatedSegs: w.truncatedSegs,
	}
	if len(w.segs) > 0 && w.nextLSN > w.segs[0].firstLSN {
		st.FirstLSN = w.segs[0].firstLSN
	}
	return st
}

// Close stops the committer, flushes, fsyncs (outside ModeOff), and
// closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	var err error
	if w.f != nil {
		if ferr := w.bw.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if w.opts.Mode != ModeOff {
			if serr := w.f.Sync(); serr != nil && err == nil {
				err = serr
			}
		}
		if err == nil && w.syncedLSN < w.nextLSN-1 {
			w.syncedLSN = w.nextLSN - 1
		}
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.cond.Broadcast()
	if err != nil && w.err == nil {
		w.err = err
	}
	return err
}

// syncDir fsyncs a directory so segment create/remove survives a
// crash; best-effort (not every filesystem supports it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
