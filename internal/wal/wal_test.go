package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, mode Mode, segBytes int64) *WAL {
	t.Helper()
	w, err := Open(Options{Dir: dir, Mode: mode, SegmentBytes: segBytes, FlushEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func appendN(t *testing.T, w *WAL, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("%s-%04d", tag, i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatalf("Commit %d: %v", lsn, err)
		}
	}
}

func collect(t *testing.T, src Source, after uint64) ([]uint64, []string, ReplayInfo) {
	t.Helper()
	var lsns []uint64
	var recs []string
	info, err := src.Replay(after, func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		recs = append(recs, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return lsns, recs, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, ModeSync, 0)
	appendN(t, w, 10, "rec")
	if got := w.LastLSN(); got != 10 {
		t.Errorf("LastLSN = %d, want 10", got)
	}

	lsns, recs, info := collect(t, w, 0)
	if len(recs) != 10 || info.Records != 10 {
		t.Fatalf("replayed %d records (info %d), want 10", len(recs), info.Records)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Errorf("record %d has LSN %d, want %d (dense from 1)", i, lsn, i+1)
		}
		if want := fmt.Sprintf("rec-%04d", i); recs[i] != want {
			t.Errorf("record %d = %q, want %q", i, recs[i], want)
		}
	}

	// Suffix replay: afterLSN is exclusive.
	lsns, _, info = collect(t, w, 7)
	if len(lsns) != 3 || lsns[0] != 8 || info.Skipped != 7 {
		t.Errorf("replay after 7: lsns=%v skipped=%d, want [8 9 10] skipped=7", lsns, info.Skipped)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, ModeAsync, 0)
	appendN(t, w, 5, "a")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w = openTest(t, dir, ModeAsync, 0)
	if got := w.LastLSN(); got != 5 {
		t.Fatalf("LastLSN after reopen = %d, want 5", got)
	}
	appendN(t, w, 5, "b")
	w.Close()

	lsns, recs, _ := collect(t, DirSource{Dir: dir}, 0)
	if len(lsns) != 10 || recs[5] != "b-0000" || lsns[9] != 10 {
		t.Fatalf("after reopen: %d records, recs[5]=%q lsns[9]=%d", len(lsns), recs[5], lsns[9])
	}
}

func TestSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every ~3 records rolls.
	w := openTest(t, dir, ModeSync, 64)
	appendN(t, w, 20, "seg")

	st := w.Stats()
	if st.Segments < 4 {
		t.Fatalf("Segments = %d, want several with 64-byte segment cap", st.Segments)
	}
	// All records must survive rolling.
	lsns, _, _ := collect(t, w, 0)
	if len(lsns) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(lsns))
	}

	// Truncation below LSN 10 must keep every record above 10 and
	// remove at least one sealed segment.
	removed := w.TruncateBefore(10)
	if removed == 0 {
		t.Fatal("TruncateBefore(10) removed nothing with 64-byte segments")
	}
	lsns, _, _ = collect(t, w, 0)
	if len(lsns) == 0 || lsns[len(lsns)-1] != 20 {
		t.Fatalf("post-truncate replay lost the tail: %v", lsns)
	}
	for _, lsn := range lsns {
		if lsn > 10 {
			break
		}
	}
	if first := w.FirstLSN(); first == 0 || first > 11 {
		t.Errorf("FirstLSN after truncate = %d, want in (0,11]", first)
	}
	// The active segment never goes away even if fully covered.
	if got := w.TruncateBefore(1 << 62); w.Stats().Segments < 1 {
		t.Errorf("active segment removed (removed %d)", got)
	}
	w.Close()

	// Reopen after truncation: LSNs still continue.
	w = openTest(t, dir, ModeSync, 64)
	defer w.Close()
	if got := w.LastLSN(); got != 20 {
		t.Errorf("LastLSN after truncated reopen = %d, want 20", got)
	}
}

// corruptTail exercises the crash-recovery contract: a torn or corrupt
// final record is skipped cleanly, records before it survive.
func TestTornAndCorruptTail(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		w := openTest(t, dir, ModeSync, 0)
		appendN(t, w, 6, "tail")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("want 1 segment, got %v (%v)", segs, err)
		}
		return dir, segs[0]
	}

	t.Run("torn final record", func(t *testing.T) {
		dir, seg := build(t)
		fi, _ := os.Stat(seg)
		if err := os.Truncate(seg, fi.Size()-5); err != nil {
			t.Fatal(err)
		}
		lsns, _, info := collect(t, DirSource{Dir: dir}, 0)
		if len(lsns) != 5 || !info.Truncated {
			t.Fatalf("torn tail: got %d records (truncated=%v), want 5 with truncation flagged", len(lsns), info.Truncated)
		}
		// Open must recover the same way and accept new appends.
		w := openTest(t, dir, ModeSync, 0)
		defer w.Close()
		if got := w.LastLSN(); got != 5 {
			t.Fatalf("LastLSN after torn-tail open = %d, want 5", got)
		}
		appendN(t, w, 1, "post")
		lsns, recs, info := collect(t, w, 0)
		if len(lsns) != 6 || recs[5] != "post-0000" || info.Truncated {
			t.Fatalf("append after torn-tail recovery: lsns=%v recs[5]=%q truncated=%v", lsns, recs[5], info.Truncated)
		}
	})

	t.Run("corrupt CRC in final record", func(t *testing.T) {
		dir, seg := build(t)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff // flip a payload byte of the last record
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		lsns, _, info := collect(t, DirSource{Dir: dir}, 0)
		if len(lsns) != 5 || !info.Truncated {
			t.Fatalf("corrupt CRC: got %d records (truncated=%v), want 5 with truncation flagged", len(lsns), info.Truncated)
		}
	})

	t.Run("garbage length prefix", func(t *testing.T) {
		dir, seg := build(t)
		f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		// A fake record header claiming an absurd length, then noise.
		f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6})
		f.Close()
		lsns, _, info := collect(t, DirSource{Dir: dir}, 0)
		if len(lsns) != 6 || !info.Truncated {
			t.Fatalf("garbage tail: got %d records (truncated=%v), want 6 with truncation flagged", len(lsns), info.Truncated)
		}
	})

	t.Run("damage mid-log is an error", func(t *testing.T) {
		dir := t.TempDir()
		w := openTest(t, dir, ModeSync, 64) // roll often: several segments
		appendN(t, w, 12, "mid")
		w.Close()
		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) < 3 {
			t.Fatalf("want >=3 segments, got %d", len(segs))
		}
		data, _ := os.ReadFile(segs[0])
		data[len(data)-1] ^= 0xff
		os.WriteFile(segs[0], data, 0o644)
		_, err := DirSource{Dir: dir}.Replay(0, func(uint64, []byte) error { return nil })
		if err == nil {
			t.Fatal("corruption in a non-final segment replayed without error")
		}
	})
}

func TestGroupCommitConcurrentSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Mode: ModeSync, FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const writers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i)))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := w.Commit(lsn); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := w.Stats()
	if st.Appends != writers*per {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*per)
	}
	if st.SyncedLSN != uint64(writers*per) {
		t.Fatalf("SyncedLSN = %d, want %d (every committed record durable)", st.SyncedLSN, writers*per)
	}
	// The point of group commit: far fewer fsyncs than commits.
	if st.Syncs >= int64(writers*per) {
		t.Errorf("Syncs = %d for %d commits — group commit is not batching", st.Syncs, writers*per)
	}
	lsns, _, _ := collect(t, w, 0)
	if len(lsns) != writers*per {
		t.Fatalf("replayed %d, want %d", len(lsns), writers*per)
	}
}

func TestModeParseAndStats(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"sync", ModeSync}, {"async", ModeAsync}, {"off", ModeOff}, {"", ModeAsync}} {
		m, err := ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
	}
	if _, err := ParseMode("fsync-maybe"); err == nil {
		t.Error("ParseMode accepted garbage")
	}

	dir := t.TempDir()
	w := openTest(t, dir, ModeOff, 0)
	defer w.Close()
	lsn, err := w.Append(bytes.Repeat([]byte("x"), 100))
	if err != nil || lsn != 1 {
		t.Fatalf("Append = %d, %v", lsn, err)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatalf("Commit in ModeOff: %v", err)
	}
	st := w.Stats()
	if st.Mode != "off" || st.LastLSN != 1 || st.AppendedBytes == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestAppendValidation(t *testing.T) {
	w := openTest(t, t.TempDir(), ModeOff, 0)
	defer w.Close()
	if _, err := w.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversized record accepted")
	}
	w.Close()
	if _, err := w.Append([]byte("x")); err == nil {
		t.Error("append after Close accepted")
	}
}

// TestWaitLSN covers the replication long-poll primitive: a waiter
// parked below the durable frontier wakes when a commit covers its
// LSN, and a waiter asking for a future LSN returns at its deadline
// with the frontier unchanged.
func TestWaitLSN(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, ModeAsync, 0)
	defer w.Close()
	appendN(t, w, 3, "seed")

	// Already-covered LSN returns immediately.
	if got := w.WaitLSN(3, 5*time.Second); got < 3 {
		t.Fatalf("WaitLSN(3) = %d, want >= 3", got)
	}
	// Future LSN times out without advancing.
	start := time.Now()
	if got := w.WaitLSN(100, 30*time.Millisecond); got >= 100 {
		t.Fatalf("WaitLSN(100) = %d with nothing appended", got)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("WaitLSN returned before its deadline")
	}

	// A concurrent append wakes the waiter well before a long deadline.
	done := make(chan uint64, 1)
	go func() { done <- w.WaitLSN(4, 10*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	lsn, err := w.Append([]byte("wake"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got < lsn {
			t.Fatalf("woken WaitLSN = %d, want >= %d", got, lsn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitLSN not woken by append + group commit")
	}
	if w.SyncedLSN() < lsn {
		t.Fatalf("SyncedLSN = %d after wake, want >= %d", w.SyncedLSN(), lsn)
	}

	// Close wakes any parked waiter.
	go func() { done <- w.WaitLSN(1000, 10*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitLSN not woken by Close")
	}
}

// TestDirSourceResumeMidSegment pins the resume-from-LSN contract a
// follower's reconnect depends on: replaying after an LSN that falls in
// the middle of a segment delivers exactly the suffix, record for
// record, for every possible resume point across segment boundaries.
func TestDirSourceResumeMidSegment(t *testing.T) {
	dir := t.TempDir()
	// Small segments force several files so resume points land at heads,
	// tails, and middles of segments. Rolls happen on the committer, off
	// the append path, so give it a chance to roll between bursts.
	w := openTest(t, dir, ModeOff, 128)
	const total = 40
	for burst := 0; burst < 4; burst++ {
		for i := burst * 10; i < (burst+1)*10; i++ {
			if _, err := w.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
				t.Fatalf("Append %d: %v", i, err)
			}
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for w.Stats().Segments < burst+2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if segs, err := scanDir(dir); err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments for a meaningful resume test, got %d (err %v)", len(segs), err)
	}

	src := DirSource{Dir: dir}
	for after := uint64(0); after <= total; after++ {
		lsns, recs, info := collect(t, src, after)
		want := int(total - after)
		if len(lsns) != want || info.Records != int64(want) {
			t.Fatalf("after=%d: got %d records (info %d), want %d", after, len(lsns), info.Records, want)
		}
		for i, lsn := range lsns {
			if exp := after + uint64(i) + 1; lsn != exp {
				t.Fatalf("after=%d: record %d has LSN %d, want %d", after, i, lsn, exp)
			}
			if exp := fmt.Sprintf("rec-%04d", lsn-1); recs[i] != exp {
				t.Fatalf("after=%d: record %d = %q, want %q", after, i, recs[i], exp)
			}
		}
		if info.Skipped != int64(after) {
			t.Fatalf("after=%d: skipped %d, want %d", after, info.Skipped, after)
		}
	}
}

// TestCursorTailsAcrossRolls pins the stateful tail reader the
// replication stream rides on: a cursor delivers every record exactly
// once across segment rolls and live appends, without re-reading shipped
// prefixes, and reports compaction passing it as an error.
func TestCursorTailsAcrossRolls(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, ModeOff, 160)
	defer w.Close()

	var got []uint64
	collectFn := func(lsn uint64, p []byte) error {
		if want := fmt.Sprintf("rec-%04d", lsn-1); string(p) != want {
			t.Fatalf("lsn %d payload %q, want %q", lsn, p, want)
		}
		got = append(got, lsn)
		return nil
	}

	appendBurst := func(start, n int) {
		t.Helper()
		for i := start; i < start+n; i++ {
			if _, err := w.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	appendBurst(0, 12)
	cur := w.NewCursor(3) // resume mid-segment, as a follower reconnect would
	n, err := cur.Next(w.SyncedLSN(), collectFn)
	if err != nil || n != 9 { // LSNs 4..12
		t.Fatalf("first Next = %d, %v (want 9)", n, err)
	}

	// Live tail across several rolls: each burst crosses the 160-byte
	// segment threshold, and the committer rolls between bursts.
	for burst := 0; burst < 4; burst++ {
		appendBurst(12+burst*10, 10)
		deadline := time.Now().Add(2 * time.Second)
		for w.Stats().Segments < burst+2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if _, err := cur.Next(w.SyncedLSN(), collectFn); err != nil {
			t.Fatalf("burst %d: %v", burst, err)
		}
	}
	if uint64(len(got)) != w.LastLSN()-3 {
		t.Fatalf("delivered %d records, want %d", len(got), w.LastLSN()-3)
	}
	for i, lsn := range got {
		if lsn != uint64(4+i) {
			t.Fatalf("record %d has LSN %d, want %d", i, lsn, 4+i)
		}
	}

	// Compaction passing a parked cursor is an error, not silence.
	stale := w.NewCursor(0)
	if w.TruncateBefore(w.LastLSN()) == 0 {
		t.Fatal("nothing compacted; test is vacuous")
	}
	if _, err := stale.Next(w.SyncedLSN(), collectFn); err == nil {
		t.Fatal("cursor did not report the gap after compaction")
	}
}
