package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, mode Mode, segBytes int64) *WAL {
	t.Helper()
	w, err := Open(Options{Dir: dir, Mode: mode, SegmentBytes: segBytes, FlushEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func appendN(t *testing.T, w *WAL, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("%s-%04d", tag, i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := w.Commit(lsn); err != nil {
			t.Fatalf("Commit %d: %v", lsn, err)
		}
	}
}

func collect(t *testing.T, src Source, after uint64) ([]uint64, []string, ReplayInfo) {
	t.Helper()
	var lsns []uint64
	var recs []string
	info, err := src.Replay(after, func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		recs = append(recs, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return lsns, recs, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, ModeSync, 0)
	appendN(t, w, 10, "rec")
	if got := w.LastLSN(); got != 10 {
		t.Errorf("LastLSN = %d, want 10", got)
	}

	lsns, recs, info := collect(t, w, 0)
	if len(recs) != 10 || info.Records != 10 {
		t.Fatalf("replayed %d records (info %d), want 10", len(recs), info.Records)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Errorf("record %d has LSN %d, want %d (dense from 1)", i, lsn, i+1)
		}
		if want := fmt.Sprintf("rec-%04d", i); recs[i] != want {
			t.Errorf("record %d = %q, want %q", i, recs[i], want)
		}
	}

	// Suffix replay: afterLSN is exclusive.
	lsns, _, info = collect(t, w, 7)
	if len(lsns) != 3 || lsns[0] != 8 || info.Skipped != 7 {
		t.Errorf("replay after 7: lsns=%v skipped=%d, want [8 9 10] skipped=7", lsns, info.Skipped)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	w := openTest(t, dir, ModeAsync, 0)
	appendN(t, w, 5, "a")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w = openTest(t, dir, ModeAsync, 0)
	if got := w.LastLSN(); got != 5 {
		t.Fatalf("LastLSN after reopen = %d, want 5", got)
	}
	appendN(t, w, 5, "b")
	w.Close()

	lsns, recs, _ := collect(t, DirSource{Dir: dir}, 0)
	if len(lsns) != 10 || recs[5] != "b-0000" || lsns[9] != 10 {
		t.Fatalf("after reopen: %d records, recs[5]=%q lsns[9]=%d", len(lsns), recs[5], lsns[9])
	}
}

func TestSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every ~3 records rolls.
	w := openTest(t, dir, ModeSync, 64)
	appendN(t, w, 20, "seg")

	st := w.Stats()
	if st.Segments < 4 {
		t.Fatalf("Segments = %d, want several with 64-byte segment cap", st.Segments)
	}
	// All records must survive rolling.
	lsns, _, _ := collect(t, w, 0)
	if len(lsns) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(lsns))
	}

	// Truncation below LSN 10 must keep every record above 10 and
	// remove at least one sealed segment.
	removed := w.TruncateBefore(10)
	if removed == 0 {
		t.Fatal("TruncateBefore(10) removed nothing with 64-byte segments")
	}
	lsns, _, _ = collect(t, w, 0)
	if len(lsns) == 0 || lsns[len(lsns)-1] != 20 {
		t.Fatalf("post-truncate replay lost the tail: %v", lsns)
	}
	for _, lsn := range lsns {
		if lsn > 10 {
			break
		}
	}
	if first := w.FirstLSN(); first == 0 || first > 11 {
		t.Errorf("FirstLSN after truncate = %d, want in (0,11]", first)
	}
	// The active segment never goes away even if fully covered.
	if got := w.TruncateBefore(1 << 62); w.Stats().Segments < 1 {
		t.Errorf("active segment removed (removed %d)", got)
	}
	w.Close()

	// Reopen after truncation: LSNs still continue.
	w = openTest(t, dir, ModeSync, 64)
	defer w.Close()
	if got := w.LastLSN(); got != 20 {
		t.Errorf("LastLSN after truncated reopen = %d, want 20", got)
	}
}

// corruptTail exercises the crash-recovery contract: a torn or corrupt
// final record is skipped cleanly, records before it survive.
func TestTornAndCorruptTail(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		w := openTest(t, dir, ModeSync, 0)
		appendN(t, w, 6, "tail")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("want 1 segment, got %v (%v)", segs, err)
		}
		return dir, segs[0]
	}

	t.Run("torn final record", func(t *testing.T) {
		dir, seg := build(t)
		fi, _ := os.Stat(seg)
		if err := os.Truncate(seg, fi.Size()-5); err != nil {
			t.Fatal(err)
		}
		lsns, _, info := collect(t, DirSource{Dir: dir}, 0)
		if len(lsns) != 5 || !info.Truncated {
			t.Fatalf("torn tail: got %d records (truncated=%v), want 5 with truncation flagged", len(lsns), info.Truncated)
		}
		// Open must recover the same way and accept new appends.
		w := openTest(t, dir, ModeSync, 0)
		defer w.Close()
		if got := w.LastLSN(); got != 5 {
			t.Fatalf("LastLSN after torn-tail open = %d, want 5", got)
		}
		appendN(t, w, 1, "post")
		lsns, recs, info := collect(t, w, 0)
		if len(lsns) != 6 || recs[5] != "post-0000" || info.Truncated {
			t.Fatalf("append after torn-tail recovery: lsns=%v recs[5]=%q truncated=%v", lsns, recs[5], info.Truncated)
		}
	})

	t.Run("corrupt CRC in final record", func(t *testing.T) {
		dir, seg := build(t)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff // flip a payload byte of the last record
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		lsns, _, info := collect(t, DirSource{Dir: dir}, 0)
		if len(lsns) != 5 || !info.Truncated {
			t.Fatalf("corrupt CRC: got %d records (truncated=%v), want 5 with truncation flagged", len(lsns), info.Truncated)
		}
	})

	t.Run("garbage length prefix", func(t *testing.T) {
		dir, seg := build(t)
		f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		// A fake record header claiming an absurd length, then noise.
		f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6})
		f.Close()
		lsns, _, info := collect(t, DirSource{Dir: dir}, 0)
		if len(lsns) != 6 || !info.Truncated {
			t.Fatalf("garbage tail: got %d records (truncated=%v), want 6 with truncation flagged", len(lsns), info.Truncated)
		}
	})

	t.Run("damage mid-log is an error", func(t *testing.T) {
		dir := t.TempDir()
		w := openTest(t, dir, ModeSync, 64) // roll often: several segments
		appendN(t, w, 12, "mid")
		w.Close()
		segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if len(segs) < 3 {
			t.Fatalf("want >=3 segments, got %d", len(segs))
		}
		data, _ := os.ReadFile(segs[0])
		data[len(data)-1] ^= 0xff
		os.WriteFile(segs[0], data, 0o644)
		_, err := DirSource{Dir: dir}.Replay(0, func(uint64, []byte) error { return nil })
		if err == nil {
			t.Fatal("corruption in a non-final segment replayed without error")
		}
	})
}

func TestGroupCommitConcurrentSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Mode: ModeSync, FlushEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const writers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i)))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := w.Commit(lsn); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := w.Stats()
	if st.Appends != writers*per {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*per)
	}
	if st.SyncedLSN != uint64(writers*per) {
		t.Fatalf("SyncedLSN = %d, want %d (every committed record durable)", st.SyncedLSN, writers*per)
	}
	// The point of group commit: far fewer fsyncs than commits.
	if st.Syncs >= int64(writers*per) {
		t.Errorf("Syncs = %d for %d commits — group commit is not batching", st.Syncs, writers*per)
	}
	lsns, _, _ := collect(t, w, 0)
	if len(lsns) != writers*per {
		t.Fatalf("replayed %d, want %d", len(lsns), writers*per)
	}
}

func TestModeParseAndStats(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"sync", ModeSync}, {"async", ModeAsync}, {"off", ModeOff}, {"", ModeAsync}} {
		m, err := ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
	}
	if _, err := ParseMode("fsync-maybe"); err == nil {
		t.Error("ParseMode accepted garbage")
	}

	dir := t.TempDir()
	w := openTest(t, dir, ModeOff, 0)
	defer w.Close()
	lsn, err := w.Append(bytes.Repeat([]byte("x"), 100))
	if err != nil || lsn != 1 {
		t.Fatalf("Append = %d, %v", lsn, err)
	}
	if err := w.Commit(lsn); err != nil {
		t.Fatalf("Commit in ModeOff: %v", err)
	}
	st := w.Stats()
	if st.Mode != "off" || st.LastLSN != 1 || st.AppendedBytes == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestAppendValidation(t *testing.T) {
	w := openTest(t, t.TempDir(), ModeOff, 0)
	defer w.Close()
	if _, err := w.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Error("oversized record accepted")
	}
	w.Close()
	if _, err := w.Append([]byte("x")); err == nil {
		t.Error("append after Close accepted")
	}
}
