package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
)

// buildMultiSegment writes enough records through a tiny-segment WAL to
// roll several segments, closes it, and returns the segment list.
func buildMultiSegment(t *testing.T, dir string, n int) []SegmentInfo {
	t.Helper()
	w := openTest(t, dir, ModeSync, 256)
	appendN(t, w, n, "seg")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments for a multi-segment fixture, got %d", len(segs))
	}
	return segs
}

// TestSegmentReaderRoundTrip drives the exported reader over every
// segment and checks it yields exactly the appended records, in dense
// LSN order, with resumable offsets.
func TestSegmentReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 40
	segs := buildMultiSegment(t, dir, n)

	var lsns []uint64
	var offsets []int64 // frame-boundary offsets per record, for resume checks
	var segOf []SegmentInfo
	for _, seg := range segs {
		sr, err := OpenSegment(seg)
		if err != nil {
			t.Fatal(err)
		}
		for {
			start := sr.Offset()
			lsn, payload, err := sr.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if want := fmt.Sprintf("seg-%04d", lsn-1); string(payload) != want {
				t.Errorf("lsn %d payload = %q, want %q", lsn, payload, want)
			}
			lsns = append(lsns, lsn)
			offsets = append(offsets, start)
			segOf = append(segOf, seg)
		}
		sr.Close()
	}
	if len(lsns) != n {
		t.Fatalf("read %d records, want %d", len(lsns), n)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want dense from 1", i, lsn)
		}
	}

	// Resume mid-segment at a recorded frame boundary.
	mid := n / 2
	sr, err := OpenSegmentAt(segOf[mid], offsets[mid], lsns[mid])
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	lsn, payload, err := sr.Next()
	if err != nil {
		t.Fatalf("resumed Next: %v", err)
	}
	if lsn != lsns[mid] {
		t.Errorf("resumed at LSN %d, want %d", lsn, lsns[mid])
	}
	if want := fmt.Sprintf("seg-%04d", lsn-1); string(payload) != want {
		t.Errorf("resumed payload = %q, want %q", payload, want)
	}
}

// TestSegmentDamagePlacement pins the damage contract the shared
// reader must preserve for every consumer: a torn or corrupt tail on
// the FINAL segment is a crash artifact (replay skips it cleanly,
// reporting Truncated), while the same damage mid-log is real data
// loss and must error.
func TestSegmentDamagePlacement(t *testing.T) {
	const n = 40

	corruptLastRecord := func(t *testing.T, path string) {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// Flip a byte near the end: payload corruption → CRC mismatch.
		if _, err := f.WriteAt([]byte{0xff}, st.Size()-2); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("tail damage skips", func(t *testing.T) {
		dir := t.TempDir()
		segs := buildMultiSegment(t, dir, n)
		corruptLastRecord(t, segs[len(segs)-1].Path)

		var got int
		info, err := DirSource{Dir: dir}.Replay(0, func(uint64, []byte) error {
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("tail damage must replay cleanly, got error: %v", err)
		}
		if !info.Truncated || info.TailError == nil {
			t.Fatalf("info = %+v, want Truncated with a TailError", info)
		}
		var cre *CorruptRecordError
		if !errors.As(info.TailError, &cre) {
			t.Fatalf("TailError = %v (%T), want *CorruptRecordError", info.TailError, info.TailError)
		}
		if got >= n || got == 0 {
			t.Fatalf("delivered %d records, want a non-empty strict prefix of %d", got, n)
		}
	})

	t.Run("mid-log damage errors", func(t *testing.T) {
		dir := t.TempDir()
		segs := buildMultiSegment(t, dir, n)
		corruptLastRecord(t, segs[1].Path) // sealed middle segment

		_, err := DirSource{Dir: dir}.Replay(0, func(uint64, []byte) error { return nil })
		if err == nil {
			t.Fatal("mid-log damage must error, got nil")
		}
		var cre *CorruptRecordError
		if !errors.As(err, &cre) {
			t.Fatalf("error = %v (%T), want to unwrap to *CorruptRecordError", err, err)
		}
		if cre.Path != segs[1].Path {
			t.Errorf("damage reported in %s, want %s", cre.Path, segs[1].Path)
		}
	})
}

// TestSidecarLifecycleOnCompaction checks SidecarPath's mapping and
// that TruncateBefore removes a segment's sidecar with the segment.
func TestSidecarLifecycleOnCompaction(t *testing.T) {
	if got := SidecarPath("/j/wal-0000000000000003.seg"); got != "/j/wal-0000000000000003.idx" {
		t.Fatalf("SidecarPath = %q", got)
	}

	dir := t.TempDir()
	w := openTest(t, dir, ModeSync, 256)
	appendN(t, w, 40, "seg")
	defer w.Close()

	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Fake sidecars beside every segment, as an audit pass would leave.
	for _, s := range segs {
		if err := os.WriteFile(SidecarPath(s.Path), []byte("idx"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	last := segs[len(segs)-1]
	if removed := w.TruncateBefore(last.FirstLSN - 1); removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	for _, s := range segs[:len(segs)-1] {
		if _, err := os.Stat(s.Path); !errors.Is(err, os.ErrNotExist) {
			continue // segment survived (active or still needed); sidecar may stay
		}
		if _, err := os.Stat(SidecarPath(s.Path)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphaned sidecar left behind for %s", s.Path)
		}
	}
	if _, err := os.Stat(SidecarPath(last.Path)); err != nil {
		t.Errorf("live segment's sidecar must survive compaction: %v", err)
	}
}
