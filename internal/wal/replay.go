package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReplayInfo summarizes one replay pass.
type ReplayInfo struct {
	// Records is how many records were delivered to the callback.
	Records int64
	// Skipped is how many records were below or at the requested start
	// LSN and not delivered.
	Skipped int64
	// Truncated reports that the final segment ended in a torn or
	// corrupt record; everything before the damage was delivered, the
	// damaged tail was skipped (the crash-recovery contract).
	Truncated bool
	// TailError describes the damage when Truncated is set.
	TailError error
}

// Source is anything a model can be replayed from: an open *WAL or an
// offline DirSource.
type Source interface {
	// Replay calls fn for every record with LSN > afterLSN, in order. A
	// torn or corrupt tail on the final segment ends the replay cleanly
	// (reported in ReplayInfo); the same damage mid-log is an error —
	// that is real data loss, not a crash artifact.
	Replay(afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error)
}

// DirSource replays a journal directory read-only, without opening it
// for appends — the offline "-replay" ops path.
type DirSource struct {
	Dir string
}

// Replay implements Source.
func (d DirSource) Replay(afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error) {
	segs, err := scanDir(d.Dir)
	if err != nil {
		return ReplayInfo{}, err
	}
	return replaySegments(segs, afterLSN, fn)
}

// Replay implements Source on the open journal. It flushes buffered
// appends first so every appended record is visible; intended for the
// startup window before concurrent appends begin.
func (w *WAL) Replay(afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return ReplayInfo{}, err
	}
	if w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			w.err = err
			w.mu.Unlock()
			return ReplayInfo{}, err
		}
	}
	segs := append([]segment(nil), w.segs...)
	w.mu.Unlock()
	return replaySegments(segs, afterLSN, fn)
}

func replaySegments(segs []segment, afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error) {
	var info ReplayInfo
	cb := func(lsn uint64, payload []byte) error {
		if lsn <= afterLSN {
			info.Skipped++
			return nil
		}
		info.Records++
		return fn(lsn, payload)
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		// The next segment's first LSN bounds this one: a sealed segment
		// wholly at or below the start point is skipped without reading.
		if !last && segs[i+1].firstLSN > seg.firstLSN && segs[i+1].firstLSN-1 <= afterLSN {
			info.Skipped += int64(segs[i+1].firstLSN - seg.firstLSN)
			continue
		}
		_, _, tailErr, err := scanSegment(seg.path, seg.firstLSN, cb)
		if err != nil {
			return info, err
		}
		if tailErr != nil {
			if !last {
				return info, fmt.Errorf("wal: segment %s damaged mid-log: %w", seg.path, tailErr)
			}
			info.Truncated = true
			info.TailError = tailErr
		}
	}
	return info, nil
}

// scanSegment walks one segment file. It returns how many whole, valid
// records the segment holds and the byte offset just past the last one.
// tailErr describes a torn or corrupt tail (nil for a clean end); fn,
// when non-nil, receives every record in order.
func scanSegment(path string, firstLSN uint64, fn func(lsn uint64, payload []byte) error) (count int, validEnd int64, tailErr error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("wal: %s: short segment header: %w", path, err)
	}
	if string(hdr[:8]) != segMagic {
		return 0, 0, nil, fmt.Errorf("wal: %s: bad segment magic %q", path, hdr[:8])
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != firstLSN {
		return 0, 0, nil, fmt.Errorf("wal: %s: header first LSN %d, directory scan said %d", path, got, firstLSN)
	}
	validEnd = segHeaderSize
	var rec [recHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return count, validEnd, nil, nil // clean end
			}
			return count, validEnd, fmt.Errorf("torn record header at offset %d: %w", validEnd, err), nil
		}
		length := binary.LittleEndian.Uint32(rec[:4])
		crc := binary.LittleEndian.Uint32(rec[4:])
		if length == 0 || length > MaxRecordSize {
			return count, validEnd, fmt.Errorf("corrupt record length %d at offset %d", length, validEnd), nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return count, validEnd, fmt.Errorf("torn record payload at offset %d: %w", validEnd, err), nil
		}
		if got := crc32.Checksum(payload, crcTable); got != crc {
			return count, validEnd, fmt.Errorf("CRC mismatch at offset %d: stored %08x, computed %08x", validEnd, crc, got), nil
		}
		lsn := firstLSN + uint64(count)
		count++
		validEnd += int64(recHeaderSize) + int64(length)
		if fn != nil {
			if err := fn(lsn, payload); err != nil {
				return count, validEnd, nil, err
			}
		}
	}
}
