package wal

import (
	"errors"
	"fmt"
	"io"
)

// ReplayInfo summarizes one replay pass.
type ReplayInfo struct {
	// Records is how many records were delivered to the callback.
	Records int64
	// Skipped is how many records were below or at the requested start
	// LSN and not delivered.
	Skipped int64
	// Truncated reports that the final segment ended in a torn or
	// corrupt record; everything before the damage was delivered, the
	// damaged tail was skipped (the crash-recovery contract).
	Truncated bool
	// TailError describes the damage when Truncated is set.
	TailError error
}

// Source is anything a model can be replayed from: an open *WAL or an
// offline DirSource.
type Source interface {
	// Replay calls fn for every record with LSN > afterLSN, in order. A
	// torn or corrupt tail on the final segment ends the replay cleanly
	// (reported in ReplayInfo); the same damage mid-log is an error —
	// that is real data loss, not a crash artifact.
	Replay(afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error)
}

// DirSource replays a journal directory read-only, without opening it
// for appends — the offline "-replay" ops path.
type DirSource struct {
	Dir string
}

// Replay implements Source.
func (d DirSource) Replay(afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error) {
	segs, err := scanDir(d.Dir)
	if err != nil {
		return ReplayInfo{}, err
	}
	return replaySegments(segs, afterLSN, fn)
}

// Replay implements Source on the open journal. It flushes buffered
// appends first so every appended record is visible; intended for the
// startup window before concurrent appends begin.
func (w *WAL) Replay(afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error) {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return ReplayInfo{}, err
	}
	if w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			w.err = err
			w.mu.Unlock()
			return ReplayInfo{}, err
		}
	}
	segs := append([]segment(nil), w.segs...)
	w.mu.Unlock()
	return replaySegments(segs, afterLSN, fn)
}

func replaySegments(segs []segment, afterLSN uint64, fn func(lsn uint64, payload []byte) error) (ReplayInfo, error) {
	var info ReplayInfo
	cb := func(lsn uint64, payload []byte) error {
		if lsn <= afterLSN {
			info.Skipped++
			return nil
		}
		info.Records++
		return fn(lsn, payload)
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		// The next segment's first LSN bounds this one: a sealed segment
		// wholly at or below the start point is skipped without reading.
		if !last && segs[i+1].firstLSN > seg.firstLSN && segs[i+1].firstLSN-1 <= afterLSN {
			info.Skipped += int64(segs[i+1].firstLSN - seg.firstLSN)
			continue
		}
		_, _, tailErr, err := scanSegment(seg.path, seg.firstLSN, cb)
		if err != nil {
			return info, err
		}
		if tailErr != nil {
			if !last {
				return info, fmt.Errorf("wal: segment %s damaged mid-log: %w", seg.path, tailErr)
			}
			info.Truncated = true
			info.TailError = tailErr
		}
	}
	return info, nil
}

// Cursor is a stateful tail reader over an open journal: Next delivers
// records in LSN order and remembers the exact segment and byte offset
// it stopped at, so each call reads only the new suffix — unlike
// Replay, which re-scans the segment containing its start point from
// the beginning on every call. This is what keeps a replication stream
// O(new records) per long-poll wake instead of O(active segment).
//
// The caller must only ask for records it knows are flushed (the
// stream handler caps at SyncedLSN); within that bound the cursor
// never sees a torn record. A cursor is owned by one goroutine.
type Cursor struct {
	w *WAL
	// nextLSN is the next record to deliver; pos is its byte offset in
	// the segment with firstLSN segFirst (pos 0 = not yet located).
	nextLSN uint64
	seg     segment
	pos     int64
	located bool
	scratch []byte
}

// NewCursor positions a tail cursor just after afterLSN. Locating the
// byte offset scans at most one segment once; every subsequent Next is
// proportional to the records it delivers.
func (w *WAL) NewCursor(afterLSN uint64) *Cursor {
	return &Cursor{w: w, nextLSN: afterLSN + 1}
}

// Next delivers records with LSN in [cursor position, upTo] to fn, in
// order, and advances the cursor past them. It returns the number
// delivered. The payload slice is reused between records — fn must
// consume or copy it before returning. A removed segment at the
// cursor's position (compaction passed the consumer — the wal_gap
// condition) or damage below upTo returns an error; the consumer must
// restart from a fresh position.
func (c *Cursor) Next(upTo uint64, fn func(lsn uint64, payload []byte) error) (int, error) {
	if c.nextLSN > upTo {
		return 0, nil
	}
	segs, err := c.w.flushedSegments()
	if err != nil {
		return 0, err
	}
	if !c.located {
		if err := c.locate(segs); err != nil {
			return 0, err
		}
	}
	delivered := 0
	for c.nextLSN <= upTo {
		n, err := c.readSegment(upTo, fn)
		delivered += n
		if err != nil {
			return delivered, err
		}
		if c.nextLSN > upTo {
			break
		}
		// Current segment exhausted below upTo: advance to the segment
		// that starts at the cursor's LSN.
		advanced := false
		for _, s := range segs {
			if s.firstLSN == c.nextLSN && s.index > c.seg.index {
				c.seg, c.pos = s, segHeaderSize
				advanced = true
				break
			}
		}
		if !advanced {
			// The records exist (<= upTo <= SyncedLSN) but no segment
			// starts where we need one — the snapshot predates a roll;
			// refresh and retry once, else report the gap.
			if segs, err = c.w.flushedSegments(); err != nil {
				return delivered, err
			}
			refreshed := false
			for _, s := range segs {
				if s.firstLSN == c.nextLSN && s.index > c.seg.index {
					c.seg, c.pos = s, segHeaderSize
					refreshed = true
					break
				}
			}
			if !refreshed {
				return delivered, fmt.Errorf("wal: no segment holds LSN %d (compacted past the cursor)", c.nextLSN)
			}
		}
	}
	return delivered, nil
}

// flushedSegments snapshots the segment list with buffered appends
// flushed, so everything up to SyncedLSN is readable from the files.
func (w *WAL) flushedSegments() ([]segment, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return nil, w.err
	}
	if w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			w.err = err
			return nil, err
		}
	}
	return append([]segment(nil), w.segs...), nil
}

// locate finds the segment and byte offset of c.nextLSN by scanning
// (once) the segment that contains it.
func (c *Cursor) locate(segs []segment) error {
	idx := -1
	for i, s := range segs {
		if s.firstLSN <= c.nextLSN {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("wal: no segment holds LSN %d (compacted past the cursor)", c.nextLSN)
	}
	c.seg = segs[idx]
	target := c.nextLSN
	c.nextLSN = c.seg.firstLSN
	c.pos = segHeaderSize
	c.located = true
	if c.nextLSN == target {
		return nil
	}
	// Skip records below the target by reading through them.
	_, err := c.readSegment(target-1, func(uint64, []byte) error { return nil })
	if err != nil {
		return err
	}
	if c.nextLSN != target {
		return fmt.Errorf("wal: segment %s ends at LSN %d before cursor target %d", c.seg.path, c.nextLSN-1, target)
	}
	return nil
}

// readSegment reads records from the cursor's segment starting at its
// offset, delivering LSNs up to upTo. It stops cleanly at the
// segment's current end (more may be appended later) and returns how
// many records it delivered to fn.
func (c *Cursor) readSegment(upTo uint64, fn func(lsn uint64, payload []byte) error) (int, error) {
	info := SegmentInfo{Path: c.seg.path, Index: c.seg.index, FirstLSN: c.seg.firstLSN}
	sr, err := OpenSegmentAt(info, c.pos, c.nextLSN)
	if err != nil {
		return 0, err
	}
	defer sr.Close()
	sr.attachScratch(c.scratch)
	defer func() { c.scratch = sr.detachScratch() }()
	delivered := 0
	for c.nextLSN <= upTo {
		lsn, payload, rerr := sr.Next()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return delivered, nil // segment end (so far); caller advances or waits
			}
			var cre *CorruptRecordError
			if errors.As(rerr, &cre) {
				// The caller only asks for records it knows are durable, so
				// any damage here is real loss, not a crash artifact.
				return delivered, fmt.Errorf("wal: record below the durable frontier damaged: %w", cre)
			}
			return delivered, rerr
		}
		c.nextLSN = lsn + 1
		c.pos = sr.Offset()
		delivered++
		if err := fn(lsn, payload); err != nil {
			return delivered, err
		}
	}
	return delivered, nil
}

// scanSegment walks one segment file via the shared SegmentReader. It
// returns how many whole, valid records the segment holds and the byte
// offset just past the last one. tailErr describes a torn or corrupt
// tail (nil for a clean end); fn, when non-nil, receives every record
// in order.
func scanSegment(path string, firstLSN uint64, fn func(lsn uint64, payload []byte) error) (count int, validEnd int64, tailErr error, err error) {
	sr, err := OpenSegment(SegmentInfo{Path: path, FirstLSN: firstLSN})
	if err != nil {
		return 0, 0, nil, err
	}
	defer sr.Close()
	for {
		lsn, payload, rerr := sr.Next()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return count, sr.Offset(), nil, nil // clean end
			}
			var cre *CorruptRecordError
			if errors.As(rerr, &cre) {
				return count, sr.Offset(), cre, nil
			}
			return count, sr.Offset(), nil, rerr
		}
		count++
		if fn != nil {
			if err := fn(lsn, payload); err != nil {
				return count, sr.Offset(), nil, err
			}
		}
	}
}
