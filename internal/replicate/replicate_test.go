package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

const testTrainEvery = 8

// primaryRig is a WAL-backed primary served over real HTTP.
type primaryRig struct {
	srv  *serve.Server
	ts   *httptest.Server
	cl   *client.Client
	j    *wal.WAL
	cat  *rules.Catalog
	dir  string
	snap string
}

func newPrimary(t *testing.T, segBytes int64) *primaryRig {
	t.Helper()
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeAsync, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{Catalog: cat, Seed: 42, TrainEvery: testTrainEvery, QueueSize: 4096, WAL: j})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		j.Close()
	})
	return &primaryRig{srv: srv, ts: ts, cl: client.New(ts.URL), j: j, cat: cat,
		dir: dir, snap: filepath.Join(dir, "model.snap")}
}

func (p *primaryRig) hints(n, day int) []sis.Hint {
	hints := make([]sis.Hint, n)
	for i := range hints {
		hints[i] = sis.Hint{
			TemplateHash: uint64(0x5000 + i),
			TemplateID:   fmt.Sprintf("T%04d", i),
			Flip:         p.cat.FlipFor(40 + i%40),
			Day:          day,
		}
	}
	return hints
}

// traffic drives bandit-path ranks and rewards a prefix of them.
func (p *primaryRig) traffic(t *testing.T, n, salt int, rewardFrac float64) {
	t.Helper()
	jobs := make([]api.RankRequest, n)
	for i := range jobs {
		jobs[i] = api.RankRequest{
			TemplateHash: api.TemplateHash(uint64(salt)<<32 | uint64(i)),
			Span:         []int{2 + (i+salt)%60, 70 + (i*3+salt)%50, 130 + i%40},
			RowCount:     float64(500 * (i + 1)),
		}
	}
	resp, err := p.cl.RankBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var events []api.RewardEvent
	for i, res := range resp.Results {
		if res.Error != nil {
			t.Fatalf("job %d: %v", i, res.Error)
		}
		if res.EventID != "" && float64(i) < rewardFrac*float64(n) {
			v := 0.25 + float64(i%4)*0.25
			events = append(events, api.RewardEvent{EventID: res.EventID, Reward: &v})
		}
	}
	if len(events) > 0 {
		rresp, err := p.cl.RewardBatch(context.Background(), events)
		if err != nil {
			t.Fatal(err)
		}
		if rresp.Queued != len(events) {
			t.Fatalf("queued %d/%d rewards: %+v", rresp.Queued, len(events), rresp.Rejected)
		}
	}
}

// settle drains the primary's ingestion and syncs its journal so
// "caught up" has a fixed meaning.
func (p *primaryRig) settle(t *testing.T) {
	t.Helper()
	p.srv.Ingestor().Drain()
	if err := p.j.Sync(); err != nil {
		t.Fatal(err)
	}
}

func startFollower(t *testing.T, p *primaryRig) *Follower {
	t.Helper()
	f, err := Start(Config{
		Primary:    p.ts.URL,
		Catalog:    p.cat,
		Seed:       777, // deliberately different: must not affect convergence
		TrainEvery: testTrainEvery,
		PollWait:   200 * time.Millisecond,

		ReconnectBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func caughtUp(t *testing.T, f *Follower) {
	t.Helper()
	if err := f.WaitCaughtUp(context.Background(), 15*time.Second); err != nil {
		t.Fatal(err)
	}
}

// modelBytes captures a service's persisted form with the watermark
// line neutralized: primary and follower agree on every weight and
// open event, but sit at different covered-LSN positions by design.
func modelBytes(t *testing.T, save func(io.Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		t.Fatal("empty model")
	}
	head := b[:nl]
	if i := bytes.LastIndex(head, []byte(" wal=")); i >= 0 {
		head = head[:i]
	}
	return append(append([]byte{}, head...), b[nl:]...)
}

// postRaw sends a body with a pinned request ID and returns the raw
// response bytes — the byte-identical convergence comparator.
func postRaw(t *testing.T, url, rid string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestClusterSmokeConvergence is the acceptance core (and the CI
// cluster smoke): a follower bootstraps from a live primary mid-run,
// tails the journal through more traffic and a hint rollover, and
// converges — its /v2/rank responses are byte-identical to the
// primary's for the same request stream, and its model is
// byte-identical up to the watermark position.
func TestClusterSmokeConvergence(t *testing.T) {
	p := newPrimary(t, 1<<20)

	// Pre-bootstrap history: traffic and a first hint table.
	p.traffic(t, 40, 1, 0.6)
	if _, err := p.srv.InstallHints(p.hints(10, 3)); err != nil {
		t.Fatal(err)
	}
	p.settle(t)

	f := startFollower(t, p)
	if f.Applied() == 0 {
		t.Fatal("bootstrap watermark is 0: snapshot was not checkpoint-consistent")
	}

	// Post-bootstrap: more traffic AND a rollover the follower must
	// replicate in decision order.
	p.traffic(t, 30, 2, 0.5)
	if _, err := p.srv.InstallHints(p.hints(14, 4)); err != nil {
		t.Fatal(err)
	}
	p.traffic(t, 20, 3, 0.4)
	p.settle(t)
	caughtUp(t, f)

	// Hint table replicated exactly: size, content, and generation.
	wantHints, wantGen := p.srv.Cache().Export()
	gotHints, gotGen := f.Server().Cache().Export()
	if wantGen != gotGen || len(wantHints) != len(gotHints) {
		t.Fatalf("hint table diverged: primary gen %d (%d hints), follower gen %d (%d hints)",
			wantGen, len(wantHints), gotGen, len(gotHints))
	}
	for i := range wantHints {
		if wantHints[i] != gotHints[i] {
			t.Fatalf("hint %d diverged: %+v != %+v", i, wantHints[i], gotHints[i])
		}
	}

	// Model replicated byte-identically (modulo the watermark position).
	want := modelBytes(t, p.srv.Bandit().Save)
	got := modelBytes(t, f.Server().Bandit().Save)
	if !bytes.Equal(want, got) {
		i := 0
		for i < len(want) && i < len(got) && want[i] == got[i] {
			i++
		}
		lo := max(0, i-80)
		t.Fatalf("model diverged at byte %d\nprimary: ...%q\nfollower: ...%q",
			i, want[lo:min(len(want), i+80)], got[lo:min(len(got), i+80)])
	}

	// Convergence acceptance: the same hint-covered request stream with
	// the same request ID yields byte-identical responses from both
	// nodes. (Hint decisions are the production fast path and carry the
	// full response surface: source, flip, hintDay, generation.)
	jobs := make([]api.RankRequest, 0, len(wantHints))
	for _, h := range wantHints {
		jobs = append(jobs, api.RankRequest{TemplateHash: api.TemplateHash(h.TemplateHash), Span: []int{5, 55}})
	}
	body, err := json.Marshal(api.BatchRankRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	pst, praw := postRaw(t, p.ts.URL+api.RouteV2Rank, "conv-1", body)
	fts := httptest.NewServer(f)
	defer fts.Close()
	fst, fraw := postRaw(t, fts.URL+api.RouteV2Rank, "conv-1", body)
	if pst != http.StatusOK || fst != http.StatusOK {
		t.Fatalf("status %d / %d", pst, fst)
	}
	if !bytes.Equal(praw, fraw) {
		t.Fatalf("rank responses diverged\nprimary:  %s\nfollower: %s", praw, fraw)
	}

	// Bandit-path agreement: the follower's greedy choice equals the
	// primary model's greedy choice (exploration aside, the two nodes
	// embody the same policy).
	job := api.RankRequest{TemplateHash: 0xfeed, Span: []int{7, 33, 90}}
	fresp, err := f.Server().Rank(job)
	if err != nil {
		t.Fatal(err)
	}
	if fresp.Source != api.SourceBandit || fresp.EventID != "" {
		t.Fatalf("follower bandit rank = %+v", fresp)
	}
	fstats := f.Stats()
	if fstats.Role != api.RoleFollower || fstats.LagRecords != 0 || fstats.AppliedLSN == 0 {
		t.Fatalf("follower stats = %+v", fstats)
	}
	// The follower's stats flow through its HTTP surface too.
	st, err := client.New(fts.URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Replication == nil || st.Replication.Role != api.RoleFollower || st.Replication.LeaderURL != p.ts.URL {
		t.Fatalf("follower /v2/stats replication = %+v", st.Replication)
	}
}

// TestFollowerLiveTailAndReconnects lets the follower ride through
// many short-lived streams (tight long-poll windows force constant
// clean reconnects) while the primary keeps writing — every record
// must be applied exactly once, in order.
func TestFollowerLiveTailAndReconnects(t *testing.T) {
	p := newPrimary(t, 1<<20)
	p.traffic(t, 10, 1, 0.5)
	p.settle(t)

	f, err := Start(Config{
		Primary:          p.ts.URL,
		Catalog:          p.cat,
		Seed:             1,
		TrainEvery:       testTrainEvery,
		PollWait:         30 * time.Millisecond, // stream closes almost immediately when idle
		ReconnectBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for wave := 0; wave < 5; wave++ {
		p.traffic(t, 15, 10+wave, 0.6)
		time.Sleep(50 * time.Millisecond) // interleave waves with stream teardowns
	}
	if _, err := p.srv.InstallHints(p.hints(6, 9)); err != nil {
		t.Fatal(err)
	}
	p.settle(t)
	caughtUp(t, f)

	if got, want := f.Applied(), p.j.LastLSN(); got != want {
		t.Fatalf("applied %d, journal end %d", got, want)
	}
	want := modelBytes(t, p.srv.Bandit().Save)
	got := modelBytes(t, f.Server().Bandit().Save)
	if !bytes.Equal(want, got) {
		t.Fatal("model diverged across reconnecting streams")
	}
	if _, gen := f.Server().Cache().Export(); gen != 1 {
		t.Fatalf("hint rollover not applied through live tail (gen %d)", gen)
	}
}

// TestFollowerResyncAfterGap forces the unrecoverable-tail case: the
// follower's position is compacted away on the primary, the stream
// answers wal_gap, and the follower must re-bootstrap on its own and
// converge again.
func TestFollowerResyncAfterGap(t *testing.T) {
	p := newPrimary(t, 1024) // tiny segments: checkpoints compact aggressively
	p.traffic(t, 30, 1, 0.7)
	p.settle(t)

	f := startFollower(t, p)
	caughtUp(t, f)

	// Age the primary past the follower's position: traffic +
	// checkpoints until the retained window starts above `applied`.
	rewound := f.Applied()
	// Simulate a follower that was parked at an ancient LSN (e.g. it
	// was offline while the primary compacted).
	f.applied.Store(1)
	for round := 0; round < 4; round++ {
		p.traffic(t, 25, 40+round, 0.8)
		if _, err := p.srv.Checkpoint(p.snap); err != nil {
			t.Fatal(err)
		}
	}
	if first := p.j.FirstLSN(); first <= 2 {
		t.Fatalf("compaction did not advance the retained window (first=%d); test is vacuous", first)
	}
	_ = rewound
	p.settle(t)

	deadline := time.Now().Add(15 * time.Second)
	for f.resyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.resyncs.Load() == 0 {
		t.Fatal("follower never re-bootstrapped after wal_gap")
	}
	caughtUp(t, f)
	want := modelBytes(t, p.srv.Bandit().Save)
	got := modelBytes(t, f.Server().Bandit().Save)
	if !bytes.Equal(want, got) {
		t.Fatal("model diverged after gap re-sync")
	}
}

// TestFollowerResyncsOnFrontierRegression pins the journal-reset
// defense: a primary whose durable frontier is BEHIND the follower's
// applied LSN is advertising a different history (wal-dir wiped or
// replaced), and the follower must re-bootstrap instead of sitting on
// an empty stream until the new journal grows past its position and
// grafts foreign records onto its state.
func TestFollowerResyncsOnFrontierRegression(t *testing.T) {
	p := newPrimary(t, 1<<20)
	p.traffic(t, 20, 1, 0.6)
	p.settle(t)

	f := startFollower(t, p)
	caughtUp(t, f)

	// Simulate the reset from the follower's side: it believes it has
	// applied far more than the primary's journal now holds — exactly
	// the state after the primary lost its wal-dir and restarted
	// numbering from 1.
	f.applied.Store(p.j.SyncedLSN() + 1000)

	deadline := time.Now().Add(15 * time.Second)
	for f.resyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.resyncs.Load() == 0 {
		t.Fatal("follower never re-bootstrapped after frontier regression")
	}
	caughtUp(t, f)
	if lag := f.Lag(); lag != 0 {
		t.Fatalf("phantom lag %d after reset re-sync (stale frontier kept)", lag)
	}
	want := modelBytes(t, p.srv.Bandit().Save)
	got := modelBytes(t, f.Server().Bandit().Save)
	if !bytes.Equal(want, got) {
		t.Fatal("model diverged after reset re-sync")
	}
}

// TestFollowerRejectsWritesOverHTTP pins the end-to-end redirect
// contract through a real follower: rewards and rollovers bounce with
// not_primary + the leader URL.
func TestFollowerRejectsWritesOverHTTP(t *testing.T) {
	p := newPrimary(t, 1<<20)
	p.traffic(t, 5, 1, 0)
	p.settle(t)
	f := startFollower(t, p)
	fts := httptest.NewServer(f)
	defer fts.Close()

	v := 1.0
	_, err := client.New(fts.URL, client.WithRetries(0, 0)).
		RewardBatch(context.Background(), []api.RewardEvent{{EventID: "x", Reward: &v}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotPrimary || apiErr.Leader != p.ts.URL {
		t.Fatalf("follower reward error = %v", err)
	}
}
