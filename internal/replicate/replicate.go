// Package replicate implements the follower half of QO-Advisor's
// WAL-shipped replication: a read-scaled serving node that bootstraps
// from the primary's checkpoint-consistent snapshot and then tails the
// primary's write-ahead log over HTTP to keep a live, read-only
// replica of the learner and the hint table.
//
// Protocol (all primary-side pieces live in internal/serve):
//
//  1. Bootstrap — GET /v2/wal/snapshot returns the model at an exact
//     WAL watermark; the primary re-journals its hint table just above
//     that watermark, so the first tail batch delivers the hints.
//  2. Tail — GET /v2/wal?from=<applied> streams framed journal
//     records (rank decisions, reward batches, train marks, hint
//     rollovers) which the follower applies in journal order through
//     the same serve.Applier crash recovery uses. Apply order equals
//     the primary's single-worker ingestion order, so the replica's
//     model converges to byte-identical weights and event log.
//  3. Resume — a torn connection (or an idle long-poll expiry) is
//     just a reconnect with from=<last applied LSN>: frames carry
//     dense LSNs and a CRC each, so nothing is lost or applied twice.
//  4. Re-sync — if the primary compacted past the follower's position
//     (wal_gap), the stream is inconsistent, or the primary's durable
//     frontier regressed below the follower's applied LSN (a journal
//     reset — the advertised history is no longer ours), the follower
//     takes a fresh bootstrap snapshot and swaps in a new serving core
//     atomically; readers never see a half-applied table.
//
// The follower serves the full read surface (/v2/rank, /v2/hints
// lookups via rank, /v2/healthz, /v2/stats) from its local replica;
// every write is rejected by the underlying serve.Server with a
// structured not_primary error carrying the primary's URL.
package replicate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/obs"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
)

// Config parameterizes a follower.
type Config struct {
	// Primary is the primary's base URL ("http://host:port").
	Primary string
	// Catalog is the rule catalog (nil = canonical).
	Catalog *rules.Catalog
	// Seed drives nothing observable on a follower (greedy ranking is
	// deterministic) but is threaded into bandit.Load for consistency.
	Seed int64
	// TrainEvery must match the primary's ingestion batch size or the
	// replica would train on different boundaries (0 = shared default).
	TrainEvery int
	// MaxLogEvents must match the primary's event-log cap (0 = default,
	// negative = unbounded), or eviction would diverge.
	MaxLogEvents int
	// Shards / RankWorkers size the local serving layer (0 = defaults).
	Shards      int
	RankWorkers int
	// PollWait is the tail long-poll window asked of the primary
	// (0 = 10s). Shorter values tighten reconnect cadence in tests.
	PollWait time.Duration
	// ReconnectBackoff is the wait after a failed connect (0 = 500ms);
	// it doubles per consecutive failure up to 16x.
	ReconnectBackoff time.Duration
	// HTTPClient overrides the tailing transport (nil = a streaming
	// client with no overall timeout; per-state timeouts come from the
	// primary's bounded stream duration).
	HTTPClient *http.Client
	// Logger receives replication lifecycle events (bootstraps,
	// re-syncs, reconnect backoff). Nil is valid and silent.
	Logger *obs.Logger
	// Tracer samples the replica's read requests for stage tracing,
	// threaded into each bootstrapped serving core (nil = disabled).
	Tracer *obs.Tracer
	// Flight is the tail-sampled trace ring. Like applyHist, the
	// follower owns it so retained traces survive the core swaps
	// re-syncs perform; each bootstrap threads it into the fresh core.
	// Nil builds one from TraceRetain.
	Flight *obs.FlightRecorder
	// TraceRetain is the slow-trace retention threshold used to build
	// the recorder when Flight is nil (0 = default 250ms; negative
	// disables tail retention).
	TraceRetain time.Duration
}

// state is one bootstrap generation: the serving core built from one
// snapshot. Re-syncs build a fresh state and swap it in whole.
type state struct {
	srv     *serve.Server
	svc     *bandit.Service
	applier *serve.Applier
}

// Follower is a live read replica. It implements http.Handler by
// delegating to the current serving core, so it can sit directly
// behind a listener even across re-syncs.
type Follower struct {
	cfg Config
	cl  *client.Client
	hc  *http.Client

	cur atomic.Pointer[state]

	applied  atomic.Uint64 // newest journal record applied locally
	frontier atomic.Uint64 // newest durable primary LSN observed
	lastTail atomic.Int64  // unix-nano of the last applied record / stream activity

	recordsApplied atomic.Int64
	reconnects     atomic.Int64
	resyncs        atomic.Int64

	log *obs.Logger
	// applyHist is the replication_apply stage histogram. The follower
	// owns it (not the serving core) so the distribution survives the
	// core swaps re-syncs perform; each bootstrap re-registers it on
	// the fresh core.
	applyHist *obs.Histogram

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// Start bootstraps a follower from the primary and begins tailing its
// WAL. The initial bootstrap is synchronous — an unreachable primary
// fails here, not silently in the background — and the tail loop then
// maintains the replica (reconnect on torn streams, re-bootstrap on
// wal_gap) until Close.
func Start(cfg Config) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("replicate: Config.Primary is required")
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 10 * time.Second
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = 500 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		// No overall timeout: the body is a long-poll stream. Connects
		// still time out so a dead primary is noticed.
		hc = &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 30 * time.Second}}
	}
	if cfg.Flight == nil && cfg.TraceRetain >= 0 {
		cfg.Flight = serve.NewFlightRecorder(cfg.TraceRetain)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		cfg:       cfg,
		cl:        client.New(cfg.Primary, client.WithTimeout(60*time.Second)),
		hc:        hc,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		log:       cfg.Logger,
		applyHist: &obs.Histogram{},
	}
	if err := f.bootstrap(); err != nil {
		cancel()
		return nil, err
	}
	f.log.Info("follower started", "primary", cfg.Primary, "appliedLsn", f.applied.Load())
	go f.run()
	return f, nil
}

// bootstrap fetches a checkpoint-consistent snapshot from the primary
// and swaps in a fresh serving core positioned at its watermark.
func (f *Follower) bootstrap() error {
	body, err := f.cl.BootstrapSnapshot(f.ctx)
	if err != nil {
		return fmt.Errorf("replicate: bootstrap from %s: %w", f.cfg.Primary, err)
	}
	svc, err := bandit.Load(body, f.cfg.Seed)
	body.Close()
	if err != nil {
		return fmt.Errorf("replicate: decoding bootstrap snapshot: %w", err)
	}
	srv := serve.New(serve.Config{
		Catalog:      f.cfg.Catalog,
		Bandit:       svc,
		Seed:         f.cfg.Seed,
		Shards:       f.cfg.Shards,
		TrainEvery:   f.cfg.TrainEvery,
		RankWorkers:  f.cfg.RankWorkers,
		MaxLogEvents: f.cfg.MaxLogEvents,
		Follower:     true,
		LeaderURL:    f.cfg.Primary,
		Tracer:       f.cfg.Tracer,
		Flight:       f.cfg.Flight,
		TraceRetain:  f.cfg.TraceRetain,
	})
	srv.SetReplProbe(f.Stats)
	srv.RegisterStage("replication_apply", f.applyHist)
	st := &state{
		srv:     srv,
		svc:     svc,
		applier: serve.NewApplier(svc, srv.Cache(), srv.QuarantineTable(), f.cfg.TrainEvery),
	}
	old := f.cur.Swap(st)
	from := svc.WALWatermark()
	f.log.Info("bootstrap complete", "primary", f.cfg.Primary, "watermarkLsn", from)
	f.applied.Store(from)
	// The watermark is the authoritative position in whatever history
	// this snapshot came from: after a journal-reset resync the old
	// frontier belongs to a dead history and would report phantom lag
	// forever. The first tail's header re-raises it within one poll.
	f.frontier.Store(from)
	f.lastTail.Store(time.Now().UnixNano())
	if old != nil {
		old.srv.Close()
	}
	return nil
}

// run is the tail loop: stream, apply, reconnect; re-bootstrap on gap.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.ReconnectBackoff
	for f.ctx.Err() == nil {
		err := f.tailOnce()
		switch {
		case f.ctx.Err() != nil:
			return
		case err == nil:
			// Clean stream end (idle long-poll or bounded duration):
			// reconnect immediately, that IS the protocol.
			backoff = f.cfg.ReconnectBackoff
			continue
		case errors.Is(err, errNeedsResync):
			f.log.Warn("tail needs re-bootstrap", "appliedLsn", f.applied.Load())
			f.resyncs.Add(1)
			if berr := f.bootstrap(); berr != nil {
				f.log.Error("re-bootstrap failed", "err", berr, "backoff", backoff)
				f.sleep(backoff)
				backoff = min(backoff*2, 16*f.cfg.ReconnectBackoff)
			} else {
				backoff = f.cfg.ReconnectBackoff
			}
		default:
			f.log.Warn("tail stream failed", "err", err, "appliedLsn", f.applied.Load(), "backoff", backoff)
			f.reconnects.Add(1)
			f.sleep(backoff)
			backoff = min(backoff*2, 16*f.cfg.ReconnectBackoff)
		}
	}
}

func (f *Follower) sleep(d time.Duration) {
	select {
	case <-f.ctx.Done():
	case <-time.After(d):
	}
}

// errNeedsResync marks conditions tailing cannot repair: the primary
// compacted past our position, or the stream contradicted itself.
var errNeedsResync = errors.New("replicate: needs re-bootstrap")

// tailOnce opens one stream and applies frames until it ends. A nil
// return is a clean end (reconnect); errNeedsResync demands a fresh
// bootstrap; anything else is a transport fault worth a backoff.
func (f *Follower) tailOnce() error {
	st := f.cur.Load()
	from := f.applied.Load()
	url := fmt.Sprintf("%s%s?from=%d&wait=%d",
		f.cfg.Primary, api.RouteV2WAL, from, f.cfg.PollWait.Milliseconds())
	// Bound the whole exchange: the primary closes every stream within
	// its bounded duration (~20s) plus our idle window, so a response
	// still open past that means the primary silently died mid-stream
	// (partition, power loss — no RST ever comes). Without this bound
	// the body read would sit on a dead socket until TCP keepalive
	// (minutes), applying nothing and serving ever-staler state.
	ctx, cancel := context.WithTimeout(f.ctx, f.cfg.PollWait+30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := client.DecodeError(resp)
		if apiErr.Code == api.CodeWALGap {
			return errNeedsResync
		}
		return apiErr
	}
	if v, perr := strconv.ParseUint(resp.Header.Get(api.WALFrontierHeader), 10, 64); perr == nil {
		if v < f.applied.Load() {
			// The primary's durable frontier is BEHIND what we applied:
			// its journal restarted (wal-dir wiped or replaced), so LSNs
			// there belong to a different history. The stream would sit
			// empty until the new journal grows past our position and
			// then graft foreign records onto our state; rebuild from a
			// fresh snapshot instead. (A reset the follower never sees —
			// offline while the new journal outgrows our applied LSN — is
			// undetectable without a journal epoch; the bounded stream
			// duration keeps that window to one reconnect cycle.)
			return errNeedsResync
		}
		f.observeFrontier(v)
	}
	f.lastTail.Store(time.Now().UnixNano())

	for {
		lsn, payload, rerr := api.ReadWALFrame(resp.Body)
		if rerr == io.EOF {
			return nil // primary closed between frames: clean end
		}
		if rerr != nil {
			// Torn mid-frame or corrupt: drop the connection and resume
			// from the last applied LSN. Nothing partial was applied —
			// ReadWALFrame verifies the CRC before returning a payload.
			return rerr
		}
		if lsn <= f.applied.Load() {
			continue // duplicate after a race-y reconnect: already applied
		}
		if lsn != f.applied.Load()+1 {
			// LSNs are dense; a hole means this stream cannot be trusted.
			return errNeedsResync
		}
		applyStart := time.Now()
		aerr := st.applier.Apply(lsn, payload)
		f.applyHist.ObserveSince(applyStart)
		if aerr != nil {
			// Undecodable record: local state may now be behind in a way
			// tailing cannot express. Rebuild from a fresh snapshot.
			return errNeedsResync
		}
		f.applied.Store(lsn)
		f.observeFrontier(lsn)
		f.recordsApplied.Add(1)
		f.lastTail.Store(time.Now().UnixNano())
	}
}

// observeFrontier advances the observed primary frontier monotonically.
func (f *Follower) observeFrontier(lsn uint64) {
	for {
		cur := f.frontier.Load()
		if lsn <= cur || f.frontier.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// ServeHTTP delegates to the current serving core, so a Follower can
// be passed directly to http.Server even across re-syncs.
func (f *Follower) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.cur.Load().srv.ServeHTTP(w, r)
}

// Server returns the current serving core (replaced wholesale on
// re-sync; keep no long-lived references across calls).
func (f *Follower) Server() *serve.Server { return f.cur.Load().srv }

// Applied returns the newest journal LSN applied locally.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Lag returns how many records the replica is behind the newest
// durable primary position it has observed.
func (f *Follower) Lag() int64 {
	lag := int64(f.frontier.Load()) - int64(f.applied.Load())
	if lag < 0 {
		return 0
	}
	return lag
}

// Stats reports the follower's replication view — wired into the
// serving core's /v2/stats as its replication probe.
func (f *Follower) Stats() api.ReplicationStats {
	return api.ReplicationStats{
		Role:           api.RoleFollower,
		LeaderURL:      f.cfg.Primary,
		AppliedLSN:     f.applied.Load(),
		FrontierLSN:    f.frontier.Load(),
		LagRecords:     f.Lag(),
		LastTailSec:    time.Since(time.Unix(0, f.lastTail.Load())).Seconds(),
		RecordsApplied: f.recordsApplied.Load(),
		Reconnects:     f.reconnects.Load(),
		Resyncs:        f.resyncs.Load(),
	}
}

// WaitCaughtUp blocks until the replica has applied everything the
// primary reports durable at call time (a fence for tests, rollover
// orchestration, and read-your-writes gating), or the timeout expires.
func (f *Follower) WaitCaughtUp(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	stats, err := f.cl.Stats(ctx)
	if err != nil {
		return fmt.Errorf("replicate: reading primary frontier: %w", err)
	}
	var target uint64
	if stats.WAL != nil {
		target = stats.WAL.SyncedLSN
	}
	for f.applied.Load() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("replicate: still %d records behind LSN %d after %v",
				target-f.applied.Load(), target, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Close stops the tail loop and shuts down the serving core.
func (f *Follower) Close() {
	f.cancel()
	<-f.done
	if st := f.cur.Load(); st != nil {
		st.srv.Close()
	}
}
