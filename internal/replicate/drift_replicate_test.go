package replicate

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

// newDriftPrimary is newPrimary with drift detection enabled and small
// hysteresis windows, plus two installed hints to regress and spare.
func newDriftPrimary(t *testing.T, segBytes int64) (*primaryRig, uint64, uint64) {
	t.Helper()
	dir := t.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{
		Catalog: cat, Seed: 42, TrainEvery: testTrainEvery, QueueSize: 4096, WAL: j,
		Drift: &drift.Config{MinSamples: 8, QuarantineAfter: 4, ProbationAfter: 4, RestoreAfter: 8, GateCount: 1},
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		j.Close()
	})
	p := &primaryRig{srv: srv, ts: ts, cl: client.New(ts.URL), j: j, cat: cat,
		dir: dir, snap: filepath.Join(dir, "model.snap")}
	const sick, healthy = uint64(0xabc123), uint64(0xdef456)
	if _, err := srv.InstallHints([]sis.Hint{
		{TemplateHash: sick, TemplateID: "T0042", Flip: cat.FlipFor(40), Day: 7},
		{TemplateHash: healthy, TemplateID: "T0043", Flip: cat.FlipFor(55), Day: 7},
	}); err != nil {
		t.Fatal(err)
	}
	return p, sick, healthy
}

// regress drives the hash from a healthy reward baseline into
// quarantine on the primary.
func regress(t *testing.T, p *primaryRig, hash uint64) {
	t.Helper()
	flood := drift.NewFlood(int64(hash), 1.0, 0.05)
	for _, v := range flood.Batch(64) {
		if err := p.srv.ObserveReward(hash, v); err != nil {
			t.Fatal(err)
		}
	}
	flood.Shift(0.0)
	table := p.srv.QuarantineTable()
	for i := 0; i < 200 && !table.Blocked(hash); i++ {
		if err := p.srv.ObserveReward(hash, flood.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if !table.Blocked(hash) {
		t.Fatal("primary never quarantined the regressed template")
	}
}

// TestFollowerReplicatesQuarantine covers the cluster acceptance for
// the safeguard: a follower that bootstraps across a quarantine-bearing
// journal refuses the same hint the primary does (byte-identical rank
// responses), a transition applied after bootstrap arrives over the
// live tail, and a re-bootstrap after compaction does not resurrect a
// restored template.
func TestFollowerReplicatesQuarantine(t *testing.T) {
	p, sick, healthy := newDriftPrimary(t, 1024) // tiny segments: checkpoints compact
	p.traffic(t, 20, 1, 0.5)
	regress(t, p, sick)
	p.settle(t)

	// Bootstrap carries the state: the snapshot's quarantine re-journal
	// plus the tail both land on the follower.
	f := startFollower(t, p)
	caughtUp(t, f)
	if !f.Server().QuarantineTable().Blocked(sick) {
		t.Fatal("bootstrap did not carry the quarantine state")
	}
	if f.Server().QuarantineTable().Blocked(healthy) {
		t.Fatal("follower blocks a healthy template")
	}

	// Same decision on both nodes, byte for byte: the quarantined
	// template falls to the (deterministic, greedy-on-follower) bandit
	// path on the primary too, so pin the hint-path agreement on the
	// healthy template and the refusal on the sick one.
	body, err := json.Marshal(api.BatchRankRequest{Jobs: []api.RankRequest{
		{TemplateHash: api.TemplateHash(healthy), Span: []int{5, 55}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f)
	defer fts.Close()
	pst, praw := postRaw(t, p.ts.URL+api.RouteV2Rank, "quar-1", body)
	fst, fraw := postRaw(t, fts.URL+api.RouteV2Rank, "quar-1", body)
	if pst != http.StatusOK || fst != http.StatusOK || !bytes.Equal(praw, fraw) {
		t.Fatalf("healthy-template responses diverged (%d/%d)\nprimary:  %s\nfollower: %s", pst, fst, praw, fraw)
	}
	fresp, err := f.Server().Rank(api.RankRequest{TemplateHash: api.TemplateHash(sick), Span: []int{5, 55}})
	if err != nil {
		t.Fatal(err)
	}
	if fresp.Source != api.SourceBandit {
		t.Fatalf("follower served the quarantined hint: %+v", fresp)
	}
	// The follower's admin surface reflects the replicated table.
	list, err := client.New(fts.URL).QuarantineList(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Templates) != 1 || uint64(list.Templates[0].TemplateHash) != sick {
		t.Fatalf("follower quarantine list = %+v", list.Templates)
	}

	// Live tail: a manual restore on the primary lifts the block on the
	// follower without a re-bootstrap.
	if _, err := p.srv.Quarantine(sick, false); err != nil {
		t.Fatal(err)
	}
	p.settle(t)
	caughtUp(t, f)
	deadline := time.Now().Add(10 * time.Second)
	for f.Server().QuarantineTable().Blocked(sick) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.Server().QuarantineTable().Blocked(sick) {
		t.Fatal("restore did not replicate over the live tail")
	}

	// No resurrection: checkpoints compact the journal past every
	// quarantine record; a follower forced to re-bootstrap from the
	// fresh snapshot must come back with an EMPTY table, not the
	// pre-restore state.
	for round := 0; round < 4; round++ {
		p.traffic(t, 25, 40+round, 0.8)
		if _, err := p.srv.Checkpoint(p.snap); err != nil {
			t.Fatal(err)
		}
	}
	if first := p.j.FirstLSN(); first <= 2 {
		t.Fatalf("compaction did not advance the retained window (first=%d); test is vacuous", first)
	}
	p.settle(t)
	f.applied.Store(1) // park the follower below the retained window
	deadline = time.Now().Add(15 * time.Second)
	for f.resyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.resyncs.Load() == 0 {
		t.Fatal("follower never re-bootstrapped after compaction gap")
	}
	caughtUp(t, f)
	if f.Server().QuarantineTable().Blocked(sick) {
		t.Fatal("re-bootstrap resurrected a restored template's quarantine")
	}
	if n := f.Server().QuarantineTable().Len(); n != 0 {
		t.Fatalf("re-bootstrapped quarantine table has %d entries, want 0", n)
	}
}
