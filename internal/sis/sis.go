// Package sis implements the Stats & Insight Service of the paper (§4.4):
// the versioned store through which QO-Advisor's hints reach the SCOPE
// optimizer. Hint files map job-template identities to single rule flips;
// SIS validates the file format before installing a version, manages
// version history, and answers compile-time lookups so that "the
// generated hint is applied to the next occurrence of the job template".
package sis

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"qoadvisor/internal/rules"
)

// Hint steers one job template with one rule flip.
type Hint struct {
	TemplateHash uint64
	TemplateID   string
	Flip         rules.Flip
	// Day records when the hint was generated (pipeline date).
	Day int
}

// File is one uploadable hint file.
type File struct {
	Day   int
	Hints []Hint
}

// Serialize renders the file in the SIS exchange format:
//
//	qoadvisor-hints v1 day=<d>
//	<templateHash>,<templateID>,<flip>,<day>
func Serialize(w io.Writer, f File) error {
	if _, err := fmt.Fprintf(w, "qoadvisor-hints v1 day=%d\n", f.Day); err != nil {
		return err
	}
	for _, h := range f.Hints {
		if _, err := fmt.Fprintf(w, "%016x,%s,%s,%d\n", h.TemplateHash, h.TemplateID, h.Flip, h.Day); err != nil {
			return err
		}
	}
	return nil
}

// Parse reads and validates the SIS exchange format.
func Parse(r io.Reader) (File, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return File{}, fmt.Errorf("sis: empty hint file")
	}
	header := sc.Text()
	var day int
	if _, err := fmt.Sscanf(header, "qoadvisor-hints v1 day=%d", &day); err != nil {
		return File{}, fmt.Errorf("sis: bad header %q", header)
	}
	f := File{Day: day}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return File{}, fmt.Errorf("sis: line %d: want 4 fields, got %d", line, len(parts))
		}
		hash, err := strconv.ParseUint(parts[0], 16, 64)
		if err != nil {
			return File{}, fmt.Errorf("sis: line %d: bad template hash: %v", line, err)
		}
		flip, err := rules.ParseFlip(parts[2])
		if err != nil {
			return File{}, fmt.Errorf("sis: line %d: %v", line, err)
		}
		hintDay, err := strconv.Atoi(parts[3])
		if err != nil {
			return File{}, fmt.Errorf("sis: line %d: bad day: %v", line, err)
		}
		f.Hints = append(f.Hints, Hint{
			TemplateHash: hash,
			TemplateID:   parts[1],
			Flip:         flip,
			Day:          hintDay,
		})
	}
	return f, sc.Err()
}

// Validate checks a file's internal consistency: rule IDs in range, no
// duplicate templates, no hints flipping required rules.
func Validate(f File, cat *rules.Catalog) error {
	seen := make(map[uint64]bool, len(f.Hints))
	for i, h := range f.Hints {
		if h.Flip.RuleID < 0 || h.Flip.RuleID >= rules.NumRules {
			return fmt.Errorf("sis: hint %d: rule id %d out of range", i, h.Flip.RuleID)
		}
		if seen[h.TemplateHash] {
			return fmt.Errorf("sis: hint %d: duplicate template %016x", i, h.TemplateHash)
		}
		seen[h.TemplateHash] = true
		if cat != nil && cat.Rule(h.Flip.RuleID).Category == rules.Required {
			return fmt.Errorf("sis: hint %d: cannot flip required rule R%03d", i, h.Flip.RuleID)
		}
	}
	return nil
}

// Store is the versioned hint store. Uploading a file installs a new
// version; lookups serve the latest version. The zero value is unusable;
// use NewStore.
type Store struct {
	cat      *rules.Catalog
	versions []File
	current  map[uint64]Hint
}

// NewStore creates an empty store validating against the given catalog.
func NewStore(cat *rules.Catalog) *Store {
	if cat == nil {
		cat = rules.NewCatalog()
	}
	return &Store{cat: cat, current: make(map[uint64]Hint)}
}

// Upload validates and installs a hint file as the newest version. The
// new version wholly replaces the hint set, mirroring the daily pipeline
// output.
func (s *Store) Upload(f File) error {
	if err := Validate(f, s.cat); err != nil {
		return err
	}
	s.versions = append(s.versions, f)
	s.current = make(map[uint64]Hint, len(f.Hints))
	for _, h := range f.Hints {
		s.current[h.TemplateHash] = h
	}
	return nil
}

// Version returns the number of installed versions.
func (s *Store) Version() int { return len(s.versions) }

// Lookup returns the hint for a job template, if any.
func (s *Store) Lookup(templateHash uint64) (Hint, bool) {
	h, ok := s.current[templateHash]
	return h, ok
}

// Size returns the number of active hints.
func (s *Store) Size() int { return len(s.current) }

// ConfigFor returns the rule configuration the optimizer should use for
// a job template: the default config amended by the template's hint.
// This is the compile-time integration point ("every time a job matching
// one of the template identifiers is found, the provided rule hint is
// used at compile time to steer the query optimizer").
func (s *Store) ConfigFor(templateHash uint64, def rules.Config) rules.Config {
	if h, ok := s.current[templateHash]; ok {
		return def.WithFlip(h.Flip)
	}
	return def
}

// Current returns a snapshot of the active hint set in ascending
// template-hash order. The returned slice is owned by the caller — this
// is the servable form the online steering layer installs into its hint
// cache on pipeline rollover.
func (s *Store) Current() []Hint {
	out := make([]Hint, 0, len(s.current))
	for _, h := range s.current {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TemplateHash < out[j].TemplateHash })
	return out
}

// History returns the installed versions (shared slice; do not modify).
func (s *Store) History() []File { return s.versions }
