package sis

import (
	"strings"
	"testing"

	"qoadvisor/internal/rules"
)

func sampleFile(cat *rules.Catalog) File {
	on := cat.Rules(rules.OnByDefault)[0]
	off := cat.Rules(rules.OffByDefault)[0]
	return File{
		Day: 5,
		Hints: []Hint{
			{TemplateHash: 0xabc123, TemplateID: "T001", Flip: rules.Flip{RuleID: on.ID, Enable: false}, Day: 5},
			{TemplateHash: 0xdef456, TemplateID: "T002", Flip: rules.Flip{RuleID: off.ID, Enable: true}, Day: 5},
		},
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	cat := rules.NewCatalog()
	f := sampleFile(cat)
	var sb strings.Builder
	if err := Serialize(&sb, f); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Day != f.Day || len(got.Hints) != len(f.Hints) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range f.Hints {
		if got.Hints[i] != f.Hints[i] {
			t.Errorf("hint %d: %+v != %+v", i, got.Hints[i], f.Hints[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage header\n",
		"qoadvisor-hints v1 day=1\nonly,three,fields\n",
		"qoadvisor-hints v1 day=1\nzzzz,T001,+R001,1\n",  // bad hash (not hex is actually ok for z? no: z invalid)
		"qoadvisor-hints v1 day=1\n00ab,T001,flip,1\n",   // bad flip
		"qoadvisor-hints v1 day=1\n00ab,T001,+R001,xx\n", // bad day
		"qoadvisor-hints v1 day=1\n00ab,T001,+R999,1\n",  // rule out of range
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	src := "qoadvisor-hints v1 day=2\n\n00000000000000ab,T001,+R050,2\n\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Hints) != 1 {
		t.Fatalf("hints = %d", len(f.Hints))
	}
}

func TestValidate(t *testing.T) {
	cat := rules.NewCatalog()
	good := sampleFile(cat)
	if err := Validate(good, cat); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
	dup := good
	dup.Hints = append(dup.Hints, dup.Hints[0])
	if err := Validate(dup, cat); err == nil {
		t.Error("duplicate template should be rejected")
	}
	req := cat.Rules(rules.Required)[0]
	bad := File{Hints: []Hint{{TemplateHash: 1, Flip: rules.Flip{RuleID: req.ID, Enable: false}}}}
	if err := Validate(bad, cat); err == nil {
		t.Error("flipping a required rule should be rejected")
	}
	oor := File{Hints: []Hint{{TemplateHash: 1, Flip: rules.Flip{RuleID: 300}}}}
	if err := Validate(oor, cat); err == nil {
		t.Error("out-of-range rule should be rejected")
	}
}

func TestStoreUploadAndLookup(t *testing.T) {
	cat := rules.NewCatalog()
	s := NewStore(cat)
	if s.Version() != 0 || s.Size() != 0 {
		t.Fatal("new store should be empty")
	}
	f := sampleFile(cat)
	if err := s.Upload(f); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 || s.Size() != 2 {
		t.Errorf("version=%d size=%d", s.Version(), s.Size())
	}
	h, ok := s.Lookup(0xabc123)
	if !ok || h.TemplateID != "T001" {
		t.Errorf("lookup = %+v ok=%v", h, ok)
	}
	if _, ok := s.Lookup(0x999); ok {
		t.Error("unknown template should miss")
	}
}

func TestStoreUploadReplacesVersion(t *testing.T) {
	cat := rules.NewCatalog()
	s := NewStore(cat)
	f1 := sampleFile(cat)
	if err := s.Upload(f1); err != nil {
		t.Fatal(err)
	}
	f2 := File{Day: 6, Hints: []Hint{f1.Hints[1]}}
	if err := s.Upload(f2); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 2 {
		t.Errorf("version = %d", s.Version())
	}
	if _, ok := s.Lookup(0xabc123); ok {
		t.Error("old hints should be replaced by the new version")
	}
	if _, ok := s.Lookup(0xdef456); !ok {
		t.Error("new hints should be present")
	}
	if len(s.History()) != 2 {
		t.Errorf("history = %d", len(s.History()))
	}
}

func TestStoreRejectsInvalidUpload(t *testing.T) {
	cat := rules.NewCatalog()
	s := NewStore(cat)
	req := cat.Rules(rules.Required)[0]
	bad := File{Hints: []Hint{{TemplateHash: 1, Flip: rules.Flip{RuleID: req.ID}}}}
	if err := s.Upload(bad); err == nil {
		t.Fatal("invalid upload should fail")
	}
	if s.Version() != 0 {
		t.Error("failed upload must not install a version")
	}
}

func TestConfigFor(t *testing.T) {
	cat := rules.NewCatalog()
	s := NewStore(cat)
	def := cat.DefaultConfig()
	// No hint: default config unchanged.
	if got := s.ConfigFor(42, def); !got.Equal(def.Bitset) {
		t.Error("missing hint should return the default config")
	}
	f := sampleFile(cat)
	if err := s.Upload(f); err != nil {
		t.Fatal(err)
	}
	got := s.ConfigFor(0xabc123, def)
	flip := f.Hints[0].Flip
	if got.Enabled(flip.RuleID) != flip.Enable {
		t.Errorf("hint not applied: rule %d enabled=%v", flip.RuleID, got.Enabled(flip.RuleID))
	}
	diff := got.DiffFrom(def)
	if len(diff) != 1 {
		t.Errorf("hinted config should differ by exactly one flip, got %v", diff)
	}
}

func TestNewStoreNilCatalog(t *testing.T) {
	s := NewStore(nil)
	if s == nil {
		t.Fatal("nil store")
	}
	if err := s.Upload(File{Day: 1}); err != nil {
		t.Fatalf("empty upload should be fine: %v", err)
	}
}
