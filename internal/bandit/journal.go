package bandit

import (
	"fmt"

	"qoadvisor/internal/walrec"
)

// Journal is the durable log the service writes its replayable state
// transitions to (qoadvisor/internal/wal satisfies it). Append buffers
// one record and returns its log sequence number; LastLSN reports the
// newest appended position. Durability (group-commit fsync) is the
// journal's concern — the service never waits on the disk.
type Journal interface {
	Append(payload []byte) (uint64, error)
	LastLSN() uint64
}

// Journal record types, aliased from the shared registry
// (qoadvisor/internal/walrec — the one authoritative tag assignment).
// The journal carries exactly the transitions replay needs to rebuild
// the model bit-identically:
//
//   - RecRank: one logged rank decision in resolved form (event ID,
//     propensity, context feature IDs, chosen action's feature IDs) —
//     everything a later reward needs to become a training example.
//     Written by Service.Rank under the event-log mutex, so journal
//     order equals event-log order.
//   - RecRewardBatch: the accepted slice of one reward batch, written
//     by the serve layer's ingestor before acknowledging the client.
//   - RecTrainMark: an out-of-band training flush (drain, shutdown,
//     checkpoint barrier). Periodic threshold training is NOT marked —
//     replay reproduces it by counting applied rewards exactly as the
//     single-worker ingestor does.
//
// Tags 4 (hint-table rollover) and 5 (quarantine) are owned by
// qoadvisor/internal/serve, which holds the hint and drift types;
// their records are dispatched by the serve layer's applier before the
// Replayer sees them.
const (
	RecRank        = walrec.TagRank
	RecRewardBatch = walrec.TagRewardBatch
	RecTrainMark   = walrec.TagTrainMark
)

// RewardEntry is one (event, reward) observation inside a journaled
// reward batch.
type RewardEntry = walrec.RewardEntry

// RankRecord is the decoded form of a RecRank payload.
type RankRecord = walrec.Rank

// EncodeRankRecord frames one rank decision for the journal.
func EncodeRankRecord(eventID string, prob float64, ctxIDs, actIDs []uint64) []byte {
	return walrec.EncodeRank(eventID, prob, ctxIDs, actIDs)
}

// DecodeRankRecord parses a RecRank payload (including the type tag).
func DecodeRankRecord(p []byte) (RankRecord, error) {
	return walrec.DecodeRank(p)
}

// EncodeRewardBatch frames the accepted slice of one reward batch.
func EncodeRewardBatch(entries []RewardEntry) []byte {
	return walrec.EncodeRewardBatch(entries)
}

// DecodeRewardBatch parses a RecRewardBatch payload.
func DecodeRewardBatch(p []byte) ([]RewardEntry, error) {
	return walrec.DecodeRewardBatch(p)
}

// EncodeTrainMark frames an out-of-band training flush.
func EncodeTrainMark() []byte { return walrec.EncodeTrainMark() }

// ReplayStats counts what a replay pass consumed and rebuilt.
type ReplayStats struct {
	Records        int64
	Ranks          int64
	RewardBatches  int64
	Rewards        int64
	UnknownRewards int64
	TrainMarks     int64
	TrainRuns      int64
	TrainedEvents  int64
}

// Replayer rebuilds a Service's state from journal records. Feed it
// every record after the snapshot watermark via Apply, in order, then
// call Finish for the drain-equivalent tail flush.
//
// Replay is deterministic — the rebuilt model is bit-identical to the
// live one — under the serving defaults: a single ingestion worker
// (apply order equals journal order) and the same trainEvery used
// when the records were written. The replayer must be the only user
// of the service while it runs, and the service must not have a
// journal attached (attach it after, or replay would re-journal).
type Replayer struct {
	svc        *Service
	trainEvery int
	applied    int
	Stats      ReplayStats
}

// NewReplayer wraps svc for replay. trainEvery must match the
// ingestor's training batch size from the journaled run (0 selects the
// shared default, 256).
func NewReplayer(svc *Service, trainEvery int) *Replayer {
	if trainEvery <= 0 {
		trainEvery = DefaultTrainEvery
	}
	return &Replayer{svc: svc, trainEvery: trainEvery}
}

// DefaultTrainEvery is the ingestion training batch size both the
// serve layer and journal replay default to — they must agree or
// replay would train on different boundaries than the live run.
const DefaultTrainEvery = 256

// Apply consumes one journal record.
func (r *Replayer) Apply(lsn uint64, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("bandit: empty journal record at lsn %d", lsn)
	}
	r.Stats.Records++
	switch payload[0] {
	case RecRank:
		rec, err := DecodeRankRecord(payload)
		if err != nil {
			return fmt.Errorf("bandit: lsn %d: %w", lsn, err)
		}
		r.svc.restoreEvent(&Event{
			EventID: rec.EventID,
			Context: Context{IDs: rec.CtxIDs},
			Actions: []Action{{IDs: rec.ActIDs}},
			Chosen:  0,
			Prob:    rec.Prob,
		})
		r.Stats.Ranks++
	case RecRewardBatch:
		entries, err := DecodeRewardBatch(payload)
		if err != nil {
			return fmt.Errorf("bandit: lsn %d: %w", lsn, err)
		}
		r.Stats.RewardBatches++
		for _, e := range entries {
			if err := r.svc.Reward(e.EventID, e.Value); err != nil {
				r.Stats.UnknownRewards++
				continue
			}
			r.Stats.Rewards++
			r.applied++
			if r.applied >= r.trainEvery {
				r.applied = 0
				r.train()
			}
		}
	case RecTrainMark:
		r.Stats.TrainMarks++
		r.applied = 0
		r.train()
	default:
		return &UnknownRecordError{LSN: lsn, Tag: payload[0]}
	}
	r.svc.SetWALWatermark(lsn)
	return nil
}

// UnknownRecordError reports a journal record whose tag this
// dispatcher does not handle. When the tag is registered in
// qoadvisor/internal/walrec it names the record type — the signature
// of a record reaching the wrong dispatcher (serve-owned tags must be
// consumed before the Replayer sees them). An unregistered tag is the
// signature of an old binary replaying a journal written by a newer
// one. It is typed, with the offending LSN and tag, so operators can
// diagnose the skew instead of guessing from a formatted string;
// callers detect it with errors.As and must treat it as fatal for the
// replay (skipping an unknown record would silently diverge the
// state).
type UnknownRecordError struct {
	// LSN is the journal position of the unrecognized record.
	LSN uint64
	// Tag is the record's type byte.
	Tag byte
}

// Error implements the error interface.
func (e *UnknownRecordError) Error() string {
	if name := walrec.Name(e.Tag); name != "" {
		return fmt.Sprintf("bandit: unhandled journal record type %d (%s) at lsn %d", e.Tag, name, e.LSN)
	}
	return fmt.Sprintf("bandit: unknown journal record type %d at lsn %d (journal written by a newer binary?)", e.Tag, e.LSN)
}

// Finish runs the drain-equivalent tail flush: rewards journaled after
// the last training boundary train now, exactly as a graceful shutdown
// would have trained them.
func (r *Replayer) Finish() {
	r.applied = 0
	r.train()
}

func (r *Replayer) train() {
	n := r.svc.Train()
	r.Stats.TrainRuns++
	r.Stats.TrainedEvents += int64(n)
}
