package bandit

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Journal is the durable log the service writes its replayable state
// transitions to (qoadvisor/internal/wal satisfies it). Append buffers
// one record and returns its log sequence number; LastLSN reports the
// newest appended position. Durability (group-commit fsync) is the
// journal's concern — the service never waits on the disk.
type Journal interface {
	Append(payload []byte) (uint64, error)
	LastLSN() uint64
}

// Journal record types. The journal carries exactly the transitions
// replay needs to rebuild the model bit-identically:
//
//   - RecRank: one logged rank decision in resolved form (event ID,
//     propensity, context feature IDs, chosen action's feature IDs) —
//     everything a later reward needs to become a training example.
//     Written by Service.Rank under the event-log mutex, so journal
//     order equals event-log order.
//   - RecRewardBatch: the accepted slice of one reward batch, written
//     by the serve layer's ingestor before acknowledging the client.
//   - RecTrainMark: an out-of-band training flush (drain, shutdown,
//     checkpoint barrier). Periodic threshold training is NOT marked —
//     replay reproduces it by counting applied rewards exactly as the
//     single-worker ingestor does.
//
// Tag 4 (hint-table rollover) is reserved by qoadvisor/internal/serve,
// which owns the hint types; its records are dispatched by the serve
// layer's applier before the Replayer sees them.
const (
	RecRank        byte = 1
	RecRewardBatch byte = 2
	RecTrainMark   byte = 3
)

// RewardEntry is one (event, reward) observation inside a journaled
// reward batch.
type RewardEntry struct {
	EventID string
	Value   float64
}

// RankRecord is the decoded form of a RecRank payload.
type RankRecord struct {
	EventID string
	Prob    float64
	CtxIDs  []uint64
	ActIDs  []uint64
}

// appendUint64 and friends: records are little-endian, fixed 8-byte
// words for hashes/floats (feature IDs span the full 64-bit space, so
// varints would inflate them) and uvarints for lengths and counts.
func appendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bandit: journal record truncated at varint")
	}
	return v, b[n:], nil
}

func takeString(b []byte) (string, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < n {
		return "", nil, fmt.Errorf("bandit: journal record truncated at string")
	}
	return string(b[:n]), b[n:], nil
}

func takeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("bandit: journal record truncated at word")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func takeIDs(b []byte) ([]uint64, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(b)) < n*8 {
		return nil, nil, fmt.Errorf("bandit: journal record truncated at ID list")
	}
	if n == 0 {
		return nil, b, nil
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return ids, b[n*8:], nil
}

// EncodeRankRecord frames one rank decision for the journal.
func EncodeRankRecord(eventID string, prob float64, ctxIDs, actIDs []uint64) []byte {
	b := make([]byte, 0, 1+len(eventID)+4+8+(len(ctxIDs)+len(actIDs))*8+8)
	b = append(b, RecRank)
	b = appendString(b, eventID)
	b = appendUint64(b, math.Float64bits(prob))
	b = binary.AppendUvarint(b, uint64(len(ctxIDs)))
	for _, id := range ctxIDs {
		b = appendUint64(b, id)
	}
	b = binary.AppendUvarint(b, uint64(len(actIDs)))
	for _, id := range actIDs {
		b = appendUint64(b, id)
	}
	return b
}

// DecodeRankRecord parses a RecRank payload (including the type tag).
func DecodeRankRecord(p []byte) (RankRecord, error) {
	var rec RankRecord
	if len(p) == 0 || p[0] != RecRank {
		return rec, fmt.Errorf("bandit: not a rank record")
	}
	b := p[1:]
	var err error
	if rec.EventID, b, err = takeString(b); err != nil {
		return rec, err
	}
	var bits uint64
	if bits, b, err = takeUint64(b); err != nil {
		return rec, err
	}
	rec.Prob = math.Float64frombits(bits)
	if rec.CtxIDs, b, err = takeIDs(b); err != nil {
		return rec, err
	}
	if rec.ActIDs, _, err = takeIDs(b); err != nil {
		return rec, err
	}
	return rec, nil
}

// EncodeRewardBatch frames the accepted slice of one reward batch.
func EncodeRewardBatch(entries []RewardEntry) []byte {
	size := 2
	for _, e := range entries {
		size += len(e.EventID) + 4 + 8
	}
	b := make([]byte, 0, size)
	b = append(b, RecRewardBatch)
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = appendString(b, e.EventID)
		b = appendUint64(b, math.Float64bits(e.Value))
	}
	return b
}

// DecodeRewardBatch parses a RecRewardBatch payload.
func DecodeRewardBatch(p []byte) ([]RewardEntry, error) {
	if len(p) == 0 || p[0] != RecRewardBatch {
		return nil, fmt.Errorf("bandit: not a reward-batch record")
	}
	b := p[1:]
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, err
	}
	entries := make([]RewardEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e RewardEntry
		if e.EventID, b, err = takeString(b); err != nil {
			return nil, err
		}
		var bits uint64
		if bits, b, err = takeUint64(b); err != nil {
			return nil, err
		}
		e.Value = math.Float64frombits(bits)
		entries = append(entries, e)
	}
	return entries, nil
}

// EncodeTrainMark frames an out-of-band training flush.
func EncodeTrainMark() []byte { return []byte{RecTrainMark} }

// ReplayStats counts what a replay pass consumed and rebuilt.
type ReplayStats struct {
	Records        int64
	Ranks          int64
	RewardBatches  int64
	Rewards        int64
	UnknownRewards int64
	TrainMarks     int64
	TrainRuns      int64
	TrainedEvents  int64
}

// Replayer rebuilds a Service's state from journal records. Feed it
// every record after the snapshot watermark via Apply, in order, then
// call Finish for the drain-equivalent tail flush.
//
// Replay is deterministic — the rebuilt model is bit-identical to the
// live one — under the serving defaults: a single ingestion worker
// (apply order equals journal order) and the same trainEvery used
// when the records were written. The replayer must be the only user
// of the service while it runs, and the service must not have a
// journal attached (attach it after, or replay would re-journal).
type Replayer struct {
	svc        *Service
	trainEvery int
	applied    int
	Stats      ReplayStats
}

// NewReplayer wraps svc for replay. trainEvery must match the
// ingestor's training batch size from the journaled run (0 selects the
// shared default, 256).
func NewReplayer(svc *Service, trainEvery int) *Replayer {
	if trainEvery <= 0 {
		trainEvery = DefaultTrainEvery
	}
	return &Replayer{svc: svc, trainEvery: trainEvery}
}

// DefaultTrainEvery is the ingestion training batch size both the
// serve layer and journal replay default to — they must agree or
// replay would train on different boundaries than the live run.
const DefaultTrainEvery = 256

// Apply consumes one journal record.
func (r *Replayer) Apply(lsn uint64, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("bandit: empty journal record at lsn %d", lsn)
	}
	r.Stats.Records++
	switch payload[0] {
	case RecRank:
		rec, err := DecodeRankRecord(payload)
		if err != nil {
			return fmt.Errorf("bandit: lsn %d: %w", lsn, err)
		}
		r.svc.restoreEvent(&Event{
			EventID: rec.EventID,
			Context: Context{IDs: rec.CtxIDs},
			Actions: []Action{{IDs: rec.ActIDs}},
			Chosen:  0,
			Prob:    rec.Prob,
		})
		r.Stats.Ranks++
	case RecRewardBatch:
		entries, err := DecodeRewardBatch(payload)
		if err != nil {
			return fmt.Errorf("bandit: lsn %d: %w", lsn, err)
		}
		r.Stats.RewardBatches++
		for _, e := range entries {
			if err := r.svc.Reward(e.EventID, e.Value); err != nil {
				r.Stats.UnknownRewards++
				continue
			}
			r.Stats.Rewards++
			r.applied++
			if r.applied >= r.trainEvery {
				r.applied = 0
				r.train()
			}
		}
	case RecTrainMark:
		r.Stats.TrainMarks++
		r.applied = 0
		r.train()
	default:
		return &UnknownRecordError{LSN: lsn, Tag: payload[0]}
	}
	r.svc.SetWALWatermark(lsn)
	return nil
}

// UnknownRecordError reports a journal record whose tag no dispatcher
// recognizes — the signature of an old binary replaying a journal
// written by a newer one (a record type it predates). It is typed,
// with the offending LSN and tag, so operators can diagnose the
// version skew instead of guessing from a formatted string; callers
// detect it with errors.As and must treat it as fatal for the replay
// (skipping an unknown record would silently diverge the state).
type UnknownRecordError struct {
	// LSN is the journal position of the unrecognized record.
	LSN uint64
	// Tag is the record's type byte.
	Tag byte
}

// Error implements the error interface.
func (e *UnknownRecordError) Error() string {
	return fmt.Sprintf("bandit: unknown journal record type %d at lsn %d (journal written by a newer binary?)", e.Tag, e.LSN)
}

// Finish runs the drain-equivalent tail flush: rewards journaled after
// the last training boundary train now, exactly as a graceful shutdown
// would have trained them.
func (r *Replayer) Finish() {
	r.applied = 0
	r.train()
}

func (r *Replayer) train() {
	n := r.svc.Train()
	r.Stats.TrainRuns++
	r.Stats.TrainedEvents += int64(n)
}
