package bandit

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Save serializes the service's state: configuration, non-zero
// weights, the WAL watermark (the journal position the weights cover),
// and the open rank events still awaiting rewards. Trained telemetry
// is not saved — it lives in the journal — but open events must
// travel with the snapshot or rewards that straddle a checkpoint
// boundary would be lost on replay: the suffix holds the reward
// record, the snapshot holds the event it names.
//
// Format history: v1 weights were indexed by the legacy string-cross
// FNV feature hashing; v2 moved to the pre-hashed feature-ID pair
// mixing; v3 (current) adds the wal= header field and "ev" lines for
// open events. Weight-line semantics are unchanged since v2.
func (s *Service) Save(w io.Writer) error {
	// Serialize under the locks into a buffer, then stream lock-free:
	// writing directly to a slow consumer (e.g. an HTTP response) under
	// the lock would let one client stall training and, through the
	// writer-pending RWMutex semantics, all concurrent Rank calls.
	var buf bytes.Buffer
	s.evMu.Lock()
	s.encodeLocked(&buf)
	s.evMu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// CheckpointTo is Save for the recovery path: it first advances the
// WAL watermark to the journal's current end, atomically with the
// state encode (evMu blocks ranks, so no record can slip between the
// watermark read and the snapshot). The caller must have quiesced
// reward ingestion and flushed training first — the serve layer's
// checkpoint barrier — or journaled-but-unapplied rewards below the
// watermark would be skipped on replay.
func (s *Service) CheckpointTo(w io.Writer) error {
	var buf bytes.Buffer
	s.evMu.Lock()
	if s.journal != nil {
		s.walLSN = s.journal.LastLSN()
	}
	s.encodeLocked(&buf)
	s.evMu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// encodeLocked writes the v3 snapshot form; callers hold evMu (mu is
// read-locked inside — evMu→mu nests in that order everywhere).
func (s *Service) encodeLocked(buf *bytes.Buffer) {
	s.mu.RLock()
	fmt.Fprintf(buf, "qoadvisor-bandit v3 dim=%d epsilon=%g lr=%g clip=%g wal=%d\n",
		s.cfg.Dim, s.cfg.Epsilon, s.cfg.LearningRate, s.cfg.MaxIPSWeight, s.walLSN)
	for i, wgt := range s.w {
		if wgt == 0 {
			continue
		}
		fmt.Fprintf(buf, "%d %v\n", i, wgt)
	}
	s.mu.RUnlock()
	for _, ev := range s.log {
		if _, open := s.events[ev.EventID]; !open || ev.Trained {
			continue
		}
		rewarded := 0
		if ev.Rewarded {
			rewarded = 1
		}
		fmt.Fprintf(buf, "ev %s %v %d %v %s %s\n",
			ev.EventID, ev.Prob, rewarded, ev.Reward,
			formatIDs(ev.Context.featureIDs()), formatIDs(ev.Actions[ev.Chosen].featureIDs()))
	}
}

// formatIDs renders a feature-ID list as comma-joined hex ("-" when
// empty, so the line always has a fixed field count).
func formatIDs(ids []uint64) string {
	if len(ids) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(id, 16))
	}
	return b.String()
}

func parseIDs(s string) ([]uint64, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]uint64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("bad feature ID %q", p)
		}
		ids[i] = v
	}
	return ids, nil
}

// Load restores a service saved with Save. The seed drives the
// restored service's exploration randomness (exploration state is not
// part of the model).
//
// v1 snapshots are migrated on load: the hyperparameters carry over,
// but the weights do not — v1 indexes were derived from the legacy
// string-cross hashing, so under the v2+ pair mixing each would land
// on an unrelated feature pair and the model would exploit pure noise
// with full (1-epsilon) confidence. Dropping them restores the neutral
// untrained policy instead, which trains back to usefulness as rewards
// arrive; a resave writes the v3 header. The body is still fully
// parsed so a corrupt v1 file fails loudly rather than "migrating".
// v2 snapshots load weight-for-weight with watermark 0 and no open
// events.
func Load(r io.Reader, seed int64) (*Service, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22) // event lines can be long
	if !sc.Scan() {
		return nil, fmt.Errorf("bandit: empty model file")
	}
	header := sc.Text()
	var version, dim int
	var eps, lr, clip float64
	var walLSN uint64
	n, _ := fmt.Sscanf(header, "qoadvisor-bandit v%d dim=%d epsilon=%g lr=%g clip=%g wal=%d",
		&version, &dim, &eps, &lr, &clip, &walLSN)
	if n < 5 {
		return nil, fmt.Errorf("bandit: bad model header %q", header)
	}
	switch version {
	case 1, 2:
		// pre-WAL formats: no wal= field, no event lines
	case 3:
		if n != 6 {
			return nil, fmt.Errorf("bandit: v3 model header missing wal field: %q", header)
		}
	default:
		return nil, fmt.Errorf("bandit: unsupported model version v%d", version)
	}
	svc := New(Config{Dim: dim, Epsilon: eps, LearningRate: lr, MaxIPSWeight: clip, Seed: seed})
	svc.walLSN = walLSN
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Fields(text)
		if parts[0] == "ev" {
			if version < 3 {
				return nil, fmt.Errorf("bandit: line %d: event line in v%d model", line, version)
			}
			ev, err := parseEventLine(parts)
			if err != nil {
				return nil, fmt.Errorf("bandit: line %d: %w", line, err)
			}
			svc.restoreEvent(ev)
			continue
		}
		if len(parts) != 2 {
			return nil, fmt.Errorf("bandit: line %d: want 'index weight'", line)
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil || idx < 0 || idx >= dim {
			return nil, fmt.Errorf("bandit: line %d: bad index %q", line, parts[0])
		}
		wgt, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bandit: line %d: bad weight %q", line, parts[1])
		}
		if version >= 2 {
			svc.w[idx] = wgt
		}
	}
	return svc, sc.Err()
}

// parseEventLine decodes one open-event snapshot line:
// "ev <id> <prob> <rewarded> <reward> <ctxIDs> <actIDs>".
func parseEventLine(parts []string) (*Event, error) {
	if len(parts) != 7 {
		return nil, fmt.Errorf("event line has %d fields, want 7", len(parts))
	}
	prob, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return nil, fmt.Errorf("bad prob %q", parts[2])
	}
	rewarded := false
	switch parts[3] {
	case "0":
	case "1":
		rewarded = true
	default:
		return nil, fmt.Errorf("bad rewarded flag %q", parts[3])
	}
	reward, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return nil, fmt.Errorf("bad reward %q", parts[4])
	}
	ctxIDs, err := parseIDs(parts[5])
	if err != nil {
		return nil, err
	}
	actIDs, err := parseIDs(parts[6])
	if err != nil {
		return nil, err
	}
	return &Event{
		EventID:  parts[1],
		Context:  Context{IDs: ctxIDs},
		Actions:  []Action{{IDs: actIDs}},
		Chosen:   0,
		Prob:     prob,
		Reward:   reward,
		Rewarded: rewarded,
	}, nil
}
