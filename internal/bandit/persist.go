package bandit

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Save serializes the service's learned state (configuration and non-zero
// weights) in a line-oriented text format. The event log is not saved:
// models move between pipeline runs, telemetry stays where it was logged —
// the "maintaining the state over pipeline runs in a reliable way is
// non-trivial" lesson of §6 that pushed the paper onto a managed service.
//
// Format history: v1 weights were indexed by the legacy string-cross FNV
// feature hashing; v2 (current) weights are indexed by the pre-hashed
// feature-ID pair mixing. The body format is unchanged — only the
// semantics of the indexes moved.
func (s *Service) Save(w io.Writer) error {
	// Serialize under the read lock into a buffer, then stream lock-free:
	// writing directly to a slow consumer (e.g. an HTTP response) under
	// the lock would let one client stall training and, through the
	// writer-pending RWMutex semantics, all concurrent Rank calls.
	var buf bytes.Buffer
	s.mu.RLock()
	fmt.Fprintf(&buf, "qoadvisor-bandit v2 dim=%d epsilon=%g lr=%g clip=%g\n",
		s.cfg.Dim, s.cfg.Epsilon, s.cfg.LearningRate, s.cfg.MaxIPSWeight)
	for i, wgt := range s.w {
		if wgt == 0 {
			continue
		}
		fmt.Fprintf(&buf, "%d %v\n", i, wgt)
	}
	s.mu.RUnlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// Load restores a service saved with Save. The seed drives the restored
// service's exploration randomness (exploration state is not part of the
// model).
//
// v1 snapshots are migrated on load: the hyperparameters carry over, but
// the weights do not — v1 indexes were derived from the legacy
// string-cross hashing, so under the v2 pair mixing each would land on an
// unrelated feature pair and the model would exploit pure noise with full
// (1-epsilon) confidence. Dropping them restores the neutral untrained
// policy instead, which trains back to usefulness as rewards arrive; a
// resave writes the v2 header. The body is still fully parsed so a
// corrupt v1 file fails loudly rather than "migrating".
func Load(r io.Reader, seed int64) (*Service, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("bandit: empty model file")
	}
	header := sc.Text()
	var version, dim int
	var eps, lr, clip float64
	if _, err := fmt.Sscanf(header, "qoadvisor-bandit v%d dim=%d epsilon=%g lr=%g clip=%g",
		&version, &dim, &eps, &lr, &clip); err != nil {
		return nil, fmt.Errorf("bandit: bad model header %q", header)
	}
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("bandit: unsupported model version v%d", version)
	}
	svc := New(Config{Dim: dim, Epsilon: eps, LearningRate: lr, MaxIPSWeight: clip, Seed: seed})
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Fields(text)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bandit: line %d: want 'index weight'", line)
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil || idx < 0 || idx >= dim {
			return nil, fmt.Errorf("bandit: line %d: bad index %q", line, parts[0])
		}
		wgt, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bandit: line %d: bad weight %q", line, parts[1])
		}
		if version >= 2 {
			svc.w[idx] = wgt
		}
	}
	return svc, sc.Err()
}
