// Package bandit implements the contextual-bandit learner behind
// QO-Advisor's Recommendation task, modelled on the Azure Personalizer
// service the paper integrates with (§4.2): a rank/reward API over a
// linear model with hashed context×action features, epsilon-greedy
// exploration, an event log with recorded propensities enabling
// counterfactual evaluation, and inverse-propensity-scored off-policy
// updates.
package bandit

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// Action is one candidate decision, described by categorical feature
// tokens (e.g. rule ID and rule category for a rule flip).
type Action struct {
	ID       string
	Features []string
}

// Context carries the decision context as categorical feature tokens
// (e.g. job-span bit positions and their co-occurrence pairs).
type Context struct {
	Features []string
}

// Ranked is the outcome of one Rank call.
type Ranked struct {
	EventID string
	// Chosen is the index of the selected action in the submitted slice.
	Chosen int
	// Prob is the propensity with which the chosen action was selected,
	// logged for counterfactual evaluation and IPS training.
	Prob float64
	// Scores are the model scores of all actions (diagnostic).
	Scores []float64
}

// Event is one logged rank decision with its eventual reward.
type Event struct {
	EventID  string
	Context  Context
	Actions  []Action
	Chosen   int
	Prob     float64
	Reward   float64
	Rewarded bool
	Trained  bool
}

// Config parameterizes the service.
type Config struct {
	// Dim is the hashed weight dimension (power of two recommended).
	Dim int
	// Epsilon is the exploration rate of the learned policy.
	Epsilon float64
	// LearningRate for SGD updates.
	LearningRate float64
	// MaxIPSWeight clips importance weights.
	MaxIPSWeight float64
	// TrainEpochs is the number of SGD passes over new events per Train
	// call.
	TrainEpochs int
	// Seed drives exploration randomness.
	Seed int64
}

// DefaultConfig returns sensible defaults.
func DefaultConfig(seed int64) Config {
	return Config{
		Dim:          1 << 18,
		Epsilon:      0.1,
		LearningRate: 0.05,
		MaxIPSWeight: 50,
		Seed:         seed,
	}
}

// Service is the in-process Personalizer stand-in.
type Service struct {
	cfg    Config
	w      []float64
	rng    *rand.Rand
	events map[string]*Event
	log    []*Event
	seq    int
}

// New creates a Service.
func New(cfg Config) *Service {
	if cfg.Dim <= 0 {
		cfg.Dim = 1 << 18
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.1
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.MaxIPSWeight <= 0 {
		cfg.MaxIPSWeight = 50
	}
	if cfg.TrainEpochs <= 0 {
		cfg.TrainEpochs = 4
	}
	return &Service{
		cfg:    cfg,
		w:      make([]float64, cfg.Dim),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		events: make(map[string]*Event),
	}
}

// featureIndexes hashes the cross product of context and action tokens
// into weight indexes. A bias token on each side guarantees every pair
// contributes at least one feature.
func (s *Service) featureIndexes(ctx Context, a Action) []int {
	ctxTokens := append([]string{"_cbias"}, ctx.Features...)
	actTokens := append([]string{"_abias"}, a.Features...)
	idx := make([]int, 0, len(ctxTokens)*len(actTokens))
	for _, c := range ctxTokens {
		for _, t := range actTokens {
			h := fnv.New64a()
			h.Write([]byte(c))
			h.Write([]byte{'|'})
			h.Write([]byte(t))
			idx = append(idx, int(h.Sum64()%uint64(s.cfg.Dim)))
		}
	}
	return idx
}

// Score returns the model's value estimate for an action in context.
func (s *Service) Score(ctx Context, a Action) float64 {
	sum := 0.0
	for _, i := range s.featureIndexes(ctx, a) {
		sum += s.w[i]
	}
	return sum
}

func (s *Service) newEventID() string {
	s.seq++
	return fmt.Sprintf("ev%08d", s.seq)
}

// Rank selects an action with the learned epsilon-greedy policy and logs
// the decision. The returned event ID must later receive a Reward call
// (or the event is treated as unrewarded and skipped by Train).
func (s *Service) Rank(ctx Context, actions []Action) (Ranked, error) {
	return s.rank(ctx, actions, false)
}

// RankUniform selects uniformly at random, the paper's off-policy data
// collection mode: "we gather reward information using the
// uniform-at-random policy, but for the subsequent steps we act using the
// learned contextual bandit policy".
func (s *Service) RankUniform(ctx Context, actions []Action) (Ranked, error) {
	return s.rank(ctx, actions, true)
}

func (s *Service) rank(ctx Context, actions []Action, uniform bool) (Ranked, error) {
	if len(actions) == 0 {
		return Ranked{}, errors.New("bandit: no actions")
	}
	k := len(actions)
	scores := make([]float64, k)
	best := 0
	for i, a := range actions {
		scores[i] = s.Score(ctx, a)
		if scores[i] > scores[best] {
			best = i
		}
	}
	var chosen int
	var prob float64
	switch {
	case uniform:
		chosen = s.rng.Intn(k)
		prob = 1 / float64(k)
	case s.rng.Float64() < s.cfg.Epsilon:
		chosen = s.rng.Intn(k)
		if chosen == best {
			prob = (1 - s.cfg.Epsilon) + s.cfg.Epsilon/float64(k)
		} else {
			prob = s.cfg.Epsilon / float64(k)
		}
	default:
		chosen = best
		prob = (1 - s.cfg.Epsilon) + s.cfg.Epsilon/float64(k)
	}

	ev := &Event{
		EventID: s.newEventID(),
		Context: ctx,
		Actions: actions,
		Chosen:  chosen,
		Prob:    prob,
	}
	s.events[ev.EventID] = ev
	s.log = append(s.log, ev)
	return Ranked{EventID: ev.EventID, Chosen: chosen, Prob: prob, Scores: scores}, nil
}

// Reward attaches the observed reward to a rank event.
func (s *Service) Reward(eventID string, reward float64) error {
	ev, ok := s.events[eventID]
	if !ok {
		return fmt.Errorf("bandit: unknown event %q", eventID)
	}
	ev.Reward = reward
	ev.Rewarded = true
	return nil
}

// Train performs TrainEpochs IPS-weighted SGD passes over all rewarded,
// untrained events and returns how many events were consumed.
func (s *Service) Train() int {
	var fresh []*Event
	for _, ev := range s.log {
		if !ev.Rewarded || ev.Trained {
			continue
		}
		fresh = append(fresh, ev)
		ev.Trained = true
	}
	for epoch := 0; epoch < s.cfg.TrainEpochs; epoch++ {
		for _, ev := range fresh {
			s.update(ev)
		}
	}
	return len(fresh)
}

// update applies an importance-weighted regression step toward the
// observed reward for the chosen action.
func (s *Service) update(ev *Event) {
	a := ev.Actions[ev.Chosen]
	idx := s.featureIndexes(ev.Context, a)
	pred := 0.0
	for _, i := range idx {
		pred += s.w[i]
	}
	weight := 1 / ev.Prob
	if weight > s.cfg.MaxIPSWeight {
		weight = s.cfg.MaxIPSWeight
	}
	grad := s.cfg.LearningRate * weight * (ev.Reward - pred) / float64(len(idx))
	for _, i := range idx {
		s.w[i] += grad
	}
}

// LogSize returns the number of logged rank events.
func (s *Service) LogSize() int { return len(s.log) }

// Events returns the full event log (shared slice; callers must not
// modify it). The high-fidelity log is what enables counterfactual
// policy evaluation.
func (s *Service) Events() []*Event { return s.log }

// CounterfactualValue estimates the average reward another policy would
// have obtained on the logged data using inverse propensity scoring:
// V(π) = mean( r_i * 1{π(x_i) = a_i} / p_i ).
func (s *Service) CounterfactualValue(policy func(ctx Context, actions []Action) int) (float64, error) {
	n := 0
	sum := 0.0
	for _, ev := range s.log {
		if !ev.Rewarded {
			continue
		}
		n++
		if policy(ev.Context, ev.Actions) == ev.Chosen {
			w := 1 / ev.Prob
			if w > s.cfg.MaxIPSWeight {
				w = s.cfg.MaxIPSWeight
			}
			sum += ev.Reward * w
		}
	}
	if n == 0 {
		return 0, errors.New("bandit: no rewarded events")
	}
	return sum / float64(n), nil
}

// GreedyPolicy returns a policy function that picks the best-scoring
// action under the current model (no exploration), for counterfactual
// evaluation.
func (s *Service) GreedyPolicy() func(ctx Context, actions []Action) int {
	return func(ctx Context, actions []Action) int {
		best := 0
		bestScore := s.Score(ctx, actions[0])
		for i := 1; i < len(actions); i++ {
			if sc := s.Score(ctx, actions[i]); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		return best
	}
}

// TopWeights returns the n largest-magnitude weight indexes, a debugging
// aid for explainability ("which rules are really moving the needle").
func (s *Service) TopWeights(n int) []int {
	idx := make([]int, 0)
	for i, w := range s.w {
		if w != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := s.w[idx[a]], s.w[idx[b]]
		if wa < 0 {
			wa = -wa
		}
		if wb < 0 {
			wb = -wb
		}
		return wa > wb
	})
	if len(idx) > n {
		idx = idx[:n]
	}
	return idx
}
