// Package bandit implements the contextual-bandit learner behind
// QO-Advisor's Recommendation task, modelled on the Azure Personalizer
// service the paper integrates with (§4.2): a rank/reward API over a
// linear model with hashed context×action features, epsilon-greedy
// exploration, an event log with recorded propensities enabling
// counterfactual evaluation, and inverse-propensity-scored off-policy
// updates.
package bandit

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Action is one candidate decision. Features are described either as
// pre-hashed 64-bit feature IDs (IDs, the allocation-free hot path the
// offline pipeline and serve layer use) or as categorical string tokens
// (Features, the adapter path for the HTTP API, tests, and persisted
// telemetry). When IDs is non-nil it wins; string tokens are folded into
// the same ID space via HashFeature, so the two representations of the
// same feature set score identically.
type Action struct {
	ID       string
	Features []string
	IDs      []uint64
}

// Context carries the decision context (e.g. job-span bit positions and
// their co-occurrence crosses), with the same dual representation as
// Action: pre-hashed IDs preferred, string tokens as the adapter.
type Context struct {
	Features []string
	IDs      []uint64
}

// fnv64a hashes a string with FNV-1a without the hash.Hash allocation
// (and without copying the string to a byte slice).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HashFeature maps a categorical feature token into the pre-hashed
// feature-ID space. Featurizers that can compute IDs directly (integer
// mixing over span bits) skip the string entirely; this adapter exists
// for callers that still speak tokens.
func HashFeature(token string) uint64 { return fnv64a(token) }

// HashFeatures maps a token slice into feature IDs.
func HashFeatures(tokens []string) []uint64 {
	if len(tokens) == 0 {
		return nil
	}
	out := make([]uint64, len(tokens))
	for i, tok := range tokens {
		out[i] = fnv64a(tok)
	}
	return out
}

// featureIDs resolves the context's features to IDs (allocating only on
// the string-adapter path).
func (c Context) featureIDs() []uint64 {
	if c.IDs != nil {
		return c.IDs
	}
	return HashFeatures(c.Features)
}

// featureIDs resolves the action's features to IDs.
func (a Action) featureIDs() []uint64 {
	if a.IDs != nil {
		return a.IDs
	}
	return HashFeatures(a.Features)
}

// Bias feature IDs: every (context, action) pair contributes at least the
// bias×bias weight, so even featureless pairs are learnable.
var (
	ctxBiasID = fnv64a("_cbias")
	actBiasID = fnv64a("_abias")
)

// Ranked is the outcome of one Rank call.
type Ranked struct {
	EventID string
	// Chosen is the index of the selected action in the submitted slice.
	Chosen int
	// Prob is the propensity with which the chosen action was selected,
	// logged for counterfactual evaluation and IPS training.
	Prob float64
	// Scores are the model scores of all actions (diagnostic).
	Scores []float64
}

// Event is one logged rank decision with its eventual reward.
type Event struct {
	EventID  string
	Context  Context
	Actions  []Action
	Chosen   int
	Prob     float64
	Reward   float64
	Rewarded bool
	Trained  bool
}

// Config parameterizes the service.
type Config struct {
	// Dim is the hashed weight dimension (power of two recommended).
	Dim int
	// Epsilon is the exploration rate of the learned policy.
	Epsilon float64
	// LearningRate for SGD updates.
	LearningRate float64
	// MaxIPSWeight clips importance weights.
	MaxIPSWeight float64
	// TrainEpochs is the number of SGD passes over new events per Train
	// call.
	TrainEpochs int
	// MaxLogEvents caps the in-memory event log (0 = unbounded, the
	// offline-pipeline mode). When the cap is exceeded the oldest events
	// are evicted — trained ones silently, pending ones forfeiting any
	// late reward (which then reports as an unknown event). Long-running
	// servers must set a cap or the log grows without bound.
	MaxLogEvents int
	// Seed drives exploration randomness.
	Seed int64
}

// DefaultConfig returns sensible defaults.
func DefaultConfig(seed int64) Config {
	return Config{
		Dim:          1 << 18,
		Epsilon:      0.1,
		LearningRate: 0.05,
		MaxIPSWeight: 50,
		Seed:         seed,
	}
}

// Service is the in-process Personalizer stand-in. It is safe for
// concurrent use: the serve layer issues Rank and Reward calls from many
// request goroutines while the reward ingestor trains in the background.
// Scoring takes a shared read lock on the weight vector so concurrent
// Rank calls scale across cores; the event log and the exploration rng
// are guarded by their own short-critical-section mutexes.
type Service struct {
	cfg Config

	// mu guards the weight vector w: read-locked for scoring, write-locked
	// for SGD updates and deserialization.
	mu sync.RWMutex
	w  []float64

	// rngMu guards the exploration rng (lock ordering: never held together
	// with mu or evMu).
	rngMu sync.Mutex
	rng   *rand.Rand

	// evMu guards the event log, the event index, the pending-reward
	// list, the ID sequence, the log cap, and the suspension count.
	evMu   sync.Mutex
	events map[string]*Event
	log    []*Event
	// pending holds rewarded-but-untrained events so Train is O(batch)
	// rather than a full-log scan, and so an accepted reward survives
	// log eviction until it is trained.
	pending []*Event
	seq     int
	maxLog  int
	// evSuspend counts active SuspendEviction holds; eviction is off
	// while it is positive. A counter (rather than saving and restoring
	// maxLog) keeps overlapping suspensions and concurrent SetMaxLog
	// calls composable.
	evSuspend int
	// nonce makes event IDs unique across Service instances (and hence
	// process restarts), so a reward held across a model-restore restart
	// fails loudly as unknown instead of silently training the wrong
	// event. (Events restored from a v3 snapshot or journal replay keep
	// their original IDs, so rewards for them do survive restarts.)
	nonce string

	// journal, when attached, receives a RecRank record for every logged
	// rank decision, appended under evMu so journal order equals
	// event-log order. walLSN is the journal position the current model
	// state covers (set by checkpoints and replay; persisted by Save so
	// recovery replays only the suffix). Both guarded by evMu.
	journal Journal
	walLSN  uint64

	// journalErrs counts failed journal appends (fail-stop disk); the
	// serve layer surfaces it through stats.
	journalErrs atomic.Int64
}

// instanceSeq disambiguates services created in the same nanosecond.
var instanceSeq atomic.Int64

// New creates a Service.
func New(cfg Config) *Service {
	if cfg.Dim <= 0 {
		cfg.Dim = 1 << 18
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.1
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.MaxIPSWeight <= 0 {
		cfg.MaxIPSWeight = 50
	}
	if cfg.TrainEpochs <= 0 {
		cfg.TrainEpochs = 4
	}
	return &Service{
		cfg:    cfg,
		w:      make([]float64, cfg.Dim),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		events: make(map[string]*Event),
		maxLog: cfg.MaxLogEvents,
		nonce:  fmt.Sprintf("%x", uint64(time.Now().UnixNano())^uint64(instanceSeq.Add(1))<<48),
	}
}

// AttachJournal wires a durable journal into the service: every
// subsequent rank decision is appended as a RecRank record. Attach
// after any snapshot load and journal replay — an attached journal
// during replay would re-journal the replayed state.
func (s *Service) AttachJournal(j Journal) {
	s.evMu.Lock()
	s.journal = j
	s.evMu.Unlock()
}

// JournalErrors reports how many journal appends have failed.
func (s *Service) JournalErrors() int64 { return s.journalErrs.Load() }

// SetWALWatermark records the journal position the model state covers.
// Recovery replays only records above it.
func (s *Service) SetWALWatermark(lsn uint64) {
	s.evMu.Lock()
	s.walLSN = lsn
	s.evMu.Unlock()
}

// WALWatermark returns the journal position the model state covers.
func (s *Service) WALWatermark() uint64 {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return s.walLSN
}

// restoreEvent reinstates a rank event without ranking — the snapshot
// load and journal replay path. The event keeps its original ID, so
// rewards issued against the pre-crash process still apply.
func (s *Service) restoreEvent(ev *Event) {
	s.evMu.Lock()
	s.events[ev.EventID] = ev
	s.log = append(s.log, ev)
	if ev.Rewarded && !ev.Trained {
		s.pending = append(s.pending, ev)
	}
	s.evictLocked()
	s.evMu.Unlock()
}

// SetMaxLog adjusts the event-log cap at runtime (0 = unbounded) — the
// serve layer applies its bound to a learner trained by the offline
// pipeline. The cap takes effect on the next Rank.
func (s *Service) SetMaxLog(n int) {
	s.evMu.Lock()
	s.maxLog = n
	s.evMu.Unlock()
}

// SuspendEviction disables event-log eviction until the returned release
// function is called (idempotent). Batch trainers that rank every job
// before feeding any reward back (the offline pipeline's rank-all /
// recompile / learn-all phases) wrap the batch in it so a serve-layer cap
// on a shared learner cannot evict the batch's earliest still-unrewarded
// events mid-run. Suspensions nest: eviction resumes — at whatever cap
// SetMaxLog currently prescribes — once every hold is released, on the
// next Rank.
func (s *Service) SuspendEviction() (release func()) {
	s.evMu.Lock()
	s.evSuspend++
	s.evMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.evMu.Lock()
			s.evSuspend--
			s.evMu.Unlock()
		})
	}
}

// evictLocked enforces maxLog by dropping the oldest events; callers
// hold evMu. Trained events are simply forgotten; unrewarded ones lose
// their slot in the index, so a late reward reports as unknown. An
// accepted-but-untrained reward is never lost: the pending list keeps
// the event for the next Train even after it leaves the log. The 25%
// slack before compaction amortizes the copy cost across ranks.
func (s *Service) evictLocked() {
	if s.maxLog <= 0 || s.evSuspend > 0 || len(s.log) <= s.maxLog+s.maxLog/4 {
		return
	}
	drop := len(s.log) - s.maxLog
	for _, ev := range s.log[:drop] {
		if !ev.Rewarded || ev.Trained {
			delete(s.events, ev.EventID)
		}
	}
	s.log = append(s.log[:0:0], s.log[drop:]...)
}

// MixGamma is the golden-ratio multiplier shared by every hash in the
// feature-ID space: featurizers combine raw values with it and the pair
// index combines context and action IDs with it. One constant, one
// space — tuning it in a single place keeps featurization and scoring
// consistent.
const MixGamma = 0x9e3779b97f4a7c15

// Mix64 is the splitmix64 finalizer that spreads feature IDs and weight
// pair indexes over the hash space.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pairIndex mixes one context feature ID with one action feature ID into
// a weight index. The combine is asymmetric (the action side is
// pre-multiplied by the golden-ratio constant) so (c, a) and (a, c) land
// on different weights, and the splitmix64 finalizer spreads the product
// over the table.
func (s *Service) pairIndex(c, a uint64) int {
	return int(Mix64(c^(a*MixGamma)) % uint64(s.cfg.Dim))
}

// featureIndexes enumerates the weight indexes of the full cross product
// (bias ∪ ctxIDs) × (bias ∪ actIDs); scoreIDs walks the same pairs
// without materializing the slice.
func (s *Service) featureIndexes(ctxIDs, actIDs []uint64) []int {
	idx := make([]int, 0, (len(ctxIDs)+1)*(len(actIDs)+1))
	idx = append(idx, s.pairIndex(ctxBiasID, actBiasID))
	for _, a := range actIDs {
		idx = append(idx, s.pairIndex(ctxBiasID, a))
	}
	for _, c := range ctxIDs {
		idx = append(idx, s.pairIndex(c, actBiasID))
		for _, a := range actIDs {
			idx = append(idx, s.pairIndex(c, a))
		}
	}
	return idx
}

// Score returns the model's value estimate for an action in context.
func (s *Service) Score(ctx Context, a Action) float64 {
	ctxIDs, actIDs := ctx.featureIDs(), a.featureIDs()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scoreIDs(ctxIDs, actIDs)
}

// scoreIDs sums the weights of the pair cross product without allocating;
// callers hold mu (read or write).
func (s *Service) scoreIDs(ctxIDs, actIDs []uint64) float64 {
	sum := s.w[s.pairIndex(ctxBiasID, actBiasID)]
	for _, a := range actIDs {
		sum += s.w[s.pairIndex(ctxBiasID, a)]
	}
	for _, c := range ctxIDs {
		sum += s.w[s.pairIndex(c, actBiasID)]
		for _, a := range actIDs {
			sum += s.w[s.pairIndex(c, a)]
		}
	}
	return sum
}

// Rank selects an action with the learned epsilon-greedy policy and logs
// the decision. The returned event ID must later receive a Reward call
// (or the event is treated as unrewarded and skipped by Train).
func (s *Service) Rank(ctx Context, actions []Action) (Ranked, error) {
	return s.rank(ctx, actions, false)
}

// RankUniform selects uniformly at random, the paper's off-policy data
// collection mode: "we gather reward information using the
// uniform-at-random policy, but for the subsequent steps we act using the
// learned contextual bandit policy".
func (s *Service) RankUniform(ctx Context, actions []Action) (Ranked, error) {
	return s.rank(ctx, actions, true)
}

// RankGreedy scores the actions and picks the argmax without logging
// an event, assigning an event ID, or consuming exploration
// randomness — the read-only decision path a replication follower
// serves. Two nodes holding the same model weights return the same
// choice for the same request, and serving it never diverges the
// replica from the primary's journaled state. The reported propensity
// is the exploit-arm probability of the primary's epsilon-greedy
// policy ((1-eps) + eps/k); there is no EventID because a follower
// cannot accept the reward — that write belongs to the primary.
func (s *Service) RankGreedy(ctx Context, actions []Action) (Ranked, error) {
	if len(actions) == 0 {
		return Ranked{}, errors.New("bandit: no actions")
	}
	ctxIDs := ctx.featureIDs()
	scores := make([]float64, len(actions))
	best := 0
	s.mu.RLock()
	for i, a := range actions {
		scores[i] = s.scoreIDs(ctxIDs, a.featureIDs())
		if scores[i] > scores[best] {
			best = i
		}
	}
	s.mu.RUnlock()
	k := float64(len(actions))
	return Ranked{Chosen: best, Prob: (1 - s.cfg.Epsilon) + s.cfg.Epsilon/k, Scores: scores}, nil
}

func (s *Service) rank(ctx Context, actions []Action, uniform bool) (Ranked, error) {
	if len(actions) == 0 {
		return Ranked{}, errors.New("bandit: no actions")
	}
	k := len(actions)
	// Resolve features to pre-hashed IDs once per rank; the pipeline's
	// featurizers hand IDs in directly, making this free.
	ctxIDs := ctx.featureIDs()
	ctx.IDs = ctxIDs // logged events carry the resolved form
	scores := make([]float64, k)
	best := 0
	s.mu.RLock()
	for i, a := range actions {
		scores[i] = s.scoreIDs(ctxIDs, a.featureIDs())
		if scores[i] > scores[best] {
			best = i
		}
	}
	s.mu.RUnlock()

	s.rngMu.Lock()
	explore := !uniform && s.rng.Float64() < s.cfg.Epsilon
	pick := 0
	if uniform || explore {
		pick = s.rng.Intn(k)
	}
	s.rngMu.Unlock()

	var chosen int
	var prob float64
	switch {
	case uniform:
		chosen = pick
		prob = 1 / float64(k)
	case explore:
		chosen = pick
		if chosen == best {
			prob = (1 - s.cfg.Epsilon) + s.cfg.Epsilon/float64(k)
		} else {
			prob = s.cfg.Epsilon / float64(k)
		}
	default:
		chosen = best
		prob = (1 - s.cfg.Epsilon) + s.cfg.Epsilon/float64(k)
	}

	ev := &Event{
		Context: ctx,
		Actions: actions,
		Chosen:  chosen,
		Prob:    prob,
	}
	s.evMu.Lock()
	s.seq++
	ev.EventID = fmt.Sprintf("ev%s-%08d", s.nonce, s.seq)
	s.events[ev.EventID] = ev
	s.log = append(s.log, ev)
	s.evictLocked()
	if s.journal != nil {
		// Journal under evMu so record order equals event-log order
		// (replay rebuilds the log in journal order). Append only
		// buffers — no disk wait on the rank path.
		rec := EncodeRankRecord(ev.EventID, prob, ctxIDs, actions[chosen].featureIDs())
		if _, err := s.journal.Append(rec); err != nil {
			s.journalErrs.Add(1)
		}
	}
	s.evMu.Unlock()
	return Ranked{EventID: ev.EventID, Chosen: chosen, Prob: prob, Scores: scores}, nil
}

// Reward attaches the observed reward to a rank event.
func (s *Service) Reward(eventID string, reward float64) error {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	ev, ok := s.events[eventID]
	if !ok {
		// Unknown, evicted, or already trained (trained events leave the
		// index) — in every case the reward has nowhere to go.
		return fmt.Errorf("bandit: unknown event %q", eventID)
	}
	if !ev.Rewarded {
		s.pending = append(s.pending, ev)
	}
	ev.Reward = reward
	ev.Rewarded = true
	return nil
}

// trainExample is an immutable snapshot of a rewarded event, taken under
// evMu so SGD can run without holding the event-log lock. Features are
// snapshotted in resolved ID form so the epochs never re-hash strings.
type trainExample struct {
	ctxIDs []uint64
	actIDs []uint64
	prob   float64
	reward float64
}

// Train performs TrainEpochs IPS-weighted SGD passes over all rewarded,
// untrained events and returns how many events were consumed.
func (s *Service) Train() int {
	s.evMu.Lock()
	fresh := make([]trainExample, 0, len(s.pending))
	for _, ev := range s.pending {
		fresh = append(fresh, trainExample{
			ctxIDs: ev.Context.featureIDs(),
			actIDs: ev.Actions[ev.Chosen].featureIDs(),
			prob:   ev.Prob,
			reward: ev.Reward,
		})
		ev.Trained = true
		// A trained event can no longer accept rewards; drop it from the
		// lookup index so the index only holds pending events.
		delete(s.events, ev.EventID)
	}
	s.pending = nil
	s.evMu.Unlock()
	if len(fresh) == 0 {
		return 0
	}

	s.mu.Lock()
	for epoch := 0; epoch < s.cfg.TrainEpochs; epoch++ {
		for _, ex := range fresh {
			s.update(ex)
		}
	}
	s.mu.Unlock()
	return len(fresh)
}

// update applies an importance-weighted regression step toward the
// observed reward for the chosen action. Callers hold mu.
func (s *Service) update(ex trainExample) {
	idx := s.featureIndexes(ex.ctxIDs, ex.actIDs)
	pred := 0.0
	for _, i := range idx {
		pred += s.w[i]
	}
	weight := 1 / ex.prob
	if weight > s.cfg.MaxIPSWeight {
		weight = s.cfg.MaxIPSWeight
	}
	grad := s.cfg.LearningRate * weight * (ex.reward - pred) / float64(len(idx))
	for _, i := range idx {
		s.w[i] += grad
	}
}

// LogSize returns the number of logged rank events.
func (s *Service) LogSize() int {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	return len(s.log)
}

// HasEvent reports whether eventID names a rank event still awaiting a
// reward in the index — the serve layer's synchronous pre-check for
// rejecting rewards that would otherwise be dropped asynchronously.
// Trained and evicted events leave the index, so a false here matches
// the "reward has nowhere to go" cases Reward would report. The answer
// is advisory: eviction may race a subsequent Reward, which then counts
// as unknown on the async path as before.
func (s *Service) HasEvent(eventID string) bool {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	_, ok := s.events[eventID]
	return ok
}

// Events returns a snapshot of the event log. Each Event is copied
// under the lock so the caller can read Reward/Rewarded/Trained without
// racing concurrent Reward and Train calls (Context and Actions are
// shared but immutable after Rank). The high-fidelity log is what
// enables counterfactual policy evaluation.
func (s *Service) Events() []*Event {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	out := make([]*Event, len(s.log))
	for i, ev := range s.log {
		cp := *ev
		out[i] = &cp
	}
	return out
}

// CounterfactualValue estimates the average reward another policy would
// have obtained on the logged data using inverse propensity scoring:
// V(π) = mean( r_i * 1{π(x_i) = a_i} / p_i ).
func (s *Service) CounterfactualValue(policy func(ctx Context, actions []Action) int) (float64, error) {
	type cfExample struct {
		ctx     Context
		actions []Action
		chosen  int
		prob    float64
		reward  float64
	}
	s.evMu.Lock()
	examples := make([]cfExample, 0, len(s.log))
	for _, ev := range s.log {
		if !ev.Rewarded {
			continue
		}
		examples = append(examples, cfExample{ev.Context, ev.Actions, ev.Chosen, ev.Prob, ev.Reward})
	}
	s.evMu.Unlock()
	if len(examples) == 0 {
		return 0, errors.New("bandit: no rewarded events")
	}
	sum := 0.0
	for _, ex := range examples {
		if policy(ex.ctx, ex.actions) == ex.chosen {
			w := 1 / ex.prob
			if w > s.cfg.MaxIPSWeight {
				w = s.cfg.MaxIPSWeight
			}
			sum += ex.reward * w
		}
	}
	return sum / float64(len(examples)), nil
}

// GreedyPolicy returns a policy function that picks the best-scoring
// action under the current model (no exploration), for counterfactual
// evaluation.
func (s *Service) GreedyPolicy() func(ctx Context, actions []Action) int {
	return func(ctx Context, actions []Action) int {
		best := 0
		bestScore := s.Score(ctx, actions[0])
		for i := 1; i < len(actions); i++ {
			if sc := s.Score(ctx, actions[i]); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		return best
	}
}

// TopWeights returns the n largest-magnitude weight indexes, a debugging
// aid for explainability ("which rules are really moving the needle").
func (s *Service) TopWeights(n int) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := make([]int, 0)
	for i, w := range s.w {
		if w != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := s.w[idx[a]], s.w[idx[b]]
		if wa < 0 {
			wa = -wa
		}
		if wb < 0 {
			wb = -wb
		}
		return wa > wb
	})
	if len(idx) > n {
		idx = idx[:n]
	}
	return idx
}
