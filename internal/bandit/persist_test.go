package bandit

import (
	"bytes"
	"strings"
	"testing"
)

// trainedService builds a service with learned, non-trivial weights.
func trainedService(t *testing.T) (*Service, Context, []Action) {
	t.Helper()
	svc := New(Config{Dim: 1 << 12, Epsilon: 0.2, LearningRate: 0.1, MaxIPSWeight: 20, Seed: 3})
	ctx := Context{Features: []string{"span:3", "span:17", "rows:5"}}
	actions := []Action{
		{ID: "noop", Features: []string{"act:noop"}},
		{ID: "+R010", Features: []string{"rule:10", "cat:off-by-default"}},
		{ID: "-R042", Features: []string{"rule:42", "cat:on-by-default"}},
	}
	for i := 0; i < 40; i++ {
		ranked, err := svc.Rank(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Reward(ranked.EventID, 1.0+0.3*float64(ranked.Chosen)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			svc.Train()
		}
	}
	svc.Train()
	return svc, ctx, actions
}

// TestSaveLoadPreservesScoresAndPropensities complements the basic
// round-trip test in bandit_test.go: beyond bit-identical scores, the
// restored config must reproduce the original's rank propensities, and a
// resave must be byte-identical.
func TestSaveLoadPreservesScoresAndPropensities(t *testing.T) {
	svc, ctx, actions := trainedService(t)

	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), 99)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Scores must be bit-identical: the model is fully determined by the
	// saved weights and config.
	for _, a := range actions {
		want, got := svc.Score(ctx, a), loaded.Score(ctx, a)
		if want != got {
			t.Errorf("Score(%s): loaded %v, want %v", a.ID, got, want)
		}
	}

	// A second save of the loaded service reproduces the same bytes.
	// (Checked before any new ranks: v3 snapshots carry open events, so
	// ranking would legitimately grow the saved state.)
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("save(load(save(x))) != save(x)")
	}

	// Propensities must round-trip too: with the same epsilon and action
	// count, greedy and exploratory ranks report the same probabilities.
	k := float64(len(actions))
	wantGreedy := (1 - 0.2) + 0.2/k
	seenGreedy := false
	for i := 0; i < 50; i++ {
		r, err := loaded.Rank(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		if r.Prob != wantGreedy && r.Prob != 0.2/k {
			t.Fatalf("Rank prob = %v, want %v (greedy) or %v (explore)", r.Prob, wantGreedy, 0.2/k)
		}
		if r.Prob == wantGreedy {
			seenGreedy = true
		}
	}
	if !seenGreedy {
		t.Error("loaded service never ranked greedily in 50 tries")
	}
	u, err := loaded.RankUniform(ctx, actions)
	if err != nil {
		t.Fatal(err)
	}
	if u.Prob != 1/k {
		t.Errorf("RankUniform prob = %v, want %v", u.Prob, 1/k)
	}
}

// TestLoadMalformedEdgeCases extends TestLoadErrors with the header and
// index shapes the serve layer can encounter on a corrupted snapshot.
func TestLoadMalformedEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"truncated header", "qoadvisor-bandit v1 dim=4096\n"},
		{"wrong field count", "qoadvisor-bandit v1 dim=4096 epsilon=0.1 lr=0.05 clip=50\n12 0.5 extra\n"},
		{"negative index", "qoadvisor-bandit v1 dim=4096 epsilon=0.1 lr=0.05 clip=50\n-3 0.5\n"},
		{"index equals dim", "qoadvisor-bandit v1 dim=4096 epsilon=0.1 lr=0.05 clip=50\n4096 0.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.data), 1); err == nil {
				t.Errorf("Load(%q) succeeded, want error", tc.data)
			}
		})
	}
}

func TestLoadSkipsBlankLinesAndRestoresConfig(t *testing.T) {
	data := "qoadvisor-bandit v2 dim=1024 epsilon=0.25 lr=0.07 clip=30\n" +
		"5 1.5\n\n   \n9 -0.25\n"
	svc, err := Load(strings.NewReader(data), 1)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	wantHeader := "qoadvisor-bandit v3 dim=1024 epsilon=0.25 lr=0.07 clip=30 wal=0"
	if got := strings.SplitN(buf.String(), "\n", 2)[0]; got != wantHeader {
		t.Errorf("resaved header = %q, want %q", got, wantHeader)
	}
	for _, want := range []string{"5 1.5\n", "9 -0.25\n"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("resaved model missing %q:\n%s", want, buf.String())
		}
	}
	if n := strings.Count(buf.String(), "\n"); n != 3 {
		t.Errorf("resaved model has %d lines, want 3:\n%s", n, buf.String())
	}
}

// TestLoadMigratesV1Snapshots covers the snapshot-format bump: v1 files
// (legacy string-cross hashed weights) still load — hyperparameters carry
// over, weights are dropped (under v2 pair mixing they would score
// unrelated feature pairs), the service is immediately servable — and a
// resave writes the v2 header.
func TestLoadMigratesV1Snapshots(t *testing.T) {
	data := "qoadvisor-bandit v1 dim=1024 epsilon=0.25 lr=0.07 clip=30\n5 1.5\n9 -0.25\n"
	svc, err := Load(strings.NewReader(data), 1)
	if err != nil {
		t.Fatalf("Load(v1): %v", err)
	}
	if svc.w[5] != 0 || svc.w[9] != 0 {
		t.Errorf("v1 weights must be dropped, not carried into the v2 index space: w[5]=%v w[9]=%v", svc.w[5], svc.w[9])
	}
	if svc.cfg.Dim != 1024 || svc.cfg.Epsilon != 0.25 || svc.cfg.LearningRate != 0.07 || svc.cfg.MaxIPSWeight != 30 {
		t.Errorf("v1 hyperparameters not carried over: %+v", svc.cfg)
	}
	// The migrated service must rank and train normally.
	ctx := Context{Features: []string{"span:1"}}
	actions := []Action{{ID: "a", Features: []string{"rule:1"}}, {ID: "b", Features: []string{"rule:2"}}}
	r, err := svc.Rank(ctx, actions)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Reward(r.EventID, 1.2); err != nil {
		t.Fatal(err)
	}
	if n := svc.Train(); n != 1 {
		t.Errorf("migrated service trained %d events, want 1", n)
	}
	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "qoadvisor-bandit v3 ") {
		t.Errorf("resave after migration must write v3, got %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestLoadRejectsUnknownVersion(t *testing.T) {
	data := "qoadvisor-bandit v4 dim=1024 epsilon=0.25 lr=0.07 clip=30 wal=0\n"
	if _, err := Load(strings.NewReader(data), 1); err == nil {
		t.Error("v4 snapshot should be rejected")
	}
}

func TestLoadRejectsV3WithoutWALField(t *testing.T) {
	data := "qoadvisor-bandit v3 dim=1024 epsilon=0.25 lr=0.07 clip=30\n"
	if _, err := Load(strings.NewReader(data), 1); err == nil {
		t.Error("v3 snapshot without wal= field should be rejected")
	}
}
