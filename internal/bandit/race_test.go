package bandit

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentRankRewardTrain exercises the serve-path access pattern —
// many goroutines ranking and rewarding while training, scoring, and
// snapshotting run alongside — and relies on the -race detector to catch
// unguarded state. Run with: go test -race ./internal/bandit/
func TestConcurrentRankRewardTrain(t *testing.T) {
	svc := New(DefaultConfig(7))
	ctxFor := func(i int) Context {
		return Context{Features: []string{fmt.Sprintf("span:%d", i%13), fmt.Sprintf("rows:%d", i%5)}}
	}
	actions := []Action{
		{ID: "noop", Features: []string{"act:noop"}},
		{ID: "+R010", Features: []string{"rule:10", "cat:off-by-default"}},
		{ID: "-R042", Features: []string{"rule:42", "cat:on-by-default"}},
	}

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ranked, err := svc.Rank(ctxFor(g*perG+i), actions)
				if err != nil {
					t.Error(err)
					return
				}
				// The just-ranked event is unrewarded, so no concurrent
				// Train can have consumed it, and the unbounded default
				// config never evicts: this Reward must succeed.
				if err := svc.Reward(ranked.EventID, 1.0+float64(ranked.Chosen)*0.1); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					svc.Train()
				}
			}
		}(g)
	}
	// Concurrent readers: scoring, snapshotting, log inspection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			svc.Score(ctxFor(i), actions[1])
			svc.TopWeights(4)
			svc.LogSize()
			var buf bytes.Buffer
			if err := svc.Save(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	svc.Train()
	if got := svc.LogSize(); got != goroutines*perG {
		t.Fatalf("LogSize = %d, want %d", got, goroutines*perG)
	}
	if _, err := svc.CounterfactualValue(svc.GreedyPolicy()); err != nil {
		t.Fatalf("CounterfactualValue: %v", err)
	}
}

// TestMaxLogEviction covers the serve-path bound: with a log cap, old
// events are evicted (late rewards report unknown) and the log stays
// within cap plus compaction slack.
func TestMaxLogEviction(t *testing.T) {
	svc := New(Config{Dim: 1 << 10, Seed: 1, MaxLogEvents: 100})
	ctx := Context{Features: []string{"span:1"}}
	actions := []Action{{ID: "a"}, {ID: "b"}}

	var first string
	for i := 0; i < 500; i++ {
		r, err := svc.Rank(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = r.EventID
		}
	}
	if got := svc.LogSize(); got > 125 {
		t.Errorf("LogSize = %d, want <= cap+slack (125)", got)
	}
	if err := svc.Reward(first, 1); err == nil {
		t.Error("reward for evicted event succeeded, want unknown-event error")
	}

	// Fresh events are still rewardable and trainable.
	r, err := svc.Rank(ctx, actions)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Reward(r.EventID, 2); err != nil {
		t.Fatalf("reward for live event: %v", err)
	}
	if n := svc.Train(); n != 1 {
		t.Errorf("Train consumed %d events, want 1", n)
	}
	// Trained events leave the index: a duplicate reward is rejected.
	if err := svc.Reward(r.EventID, 2); err == nil {
		t.Error("duplicate reward after training succeeded, want error")
	}
	// SetMaxLog(-1) lifts the cap.
	svc.SetMaxLog(-1)
	for i := 0; i < 200; i++ {
		if _, err := svc.Rank(ctx, actions); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.LogSize(); got < 300 {
		t.Errorf("LogSize = %d after lifting cap, want growth past cap", got)
	}
}
