package bandit

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func twoActions() []Action {
	return []Action{
		{ID: "good", Features: []string{"rule:good"}},
		{ID: "bad", Features: []string{"rule:bad"}},
	}
}

func TestRankReturnsValidChoice(t *testing.T) {
	s := New(DefaultConfig(1))
	r, err := s.Rank(Context{Features: []string{"f1"}}, twoActions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Chosen < 0 || r.Chosen >= 2 {
		t.Errorf("chosen = %d", r.Chosen)
	}
	if r.Prob <= 0 || r.Prob > 1 {
		t.Errorf("prob = %v", r.Prob)
	}
	if len(r.Scores) != 2 {
		t.Errorf("scores = %v", r.Scores)
	}
	if r.EventID == "" {
		t.Error("missing event ID")
	}
}

func TestRankEmptyActionsFails(t *testing.T) {
	s := New(DefaultConfig(1))
	if _, err := s.Rank(Context{}, nil); err == nil {
		t.Error("expected error")
	}
}

func TestRewardUnknownEventFails(t *testing.T) {
	s := New(DefaultConfig(1))
	if err := s.Reward("nope", 1); err == nil {
		t.Error("expected error")
	}
}

func TestLearnsGoodAction(t *testing.T) {
	// Action "good" always yields reward 1, "bad" yields 0. After
	// training on uniform exploration data, the greedy policy must
	// prefer "good".
	s := New(DefaultConfig(7))
	ctx := Context{Features: []string{"span:1", "span:2"}}
	actions := twoActions()
	for i := 0; i < 300; i++ {
		r, err := s.RankUniform(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		reward := 0.0
		if actions[r.Chosen].ID == "good" {
			reward = 1
		}
		if err := s.Reward(r.EventID, reward); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Train(); n != 300 {
		t.Fatalf("trained %d events, want 300", n)
	}
	if s.Score(ctx, actions[0]) <= s.Score(ctx, actions[1]) {
		t.Errorf("good score %v should exceed bad %v",
			s.Score(ctx, actions[0]), s.Score(ctx, actions[1]))
	}
	pol := s.GreedyPolicy()
	if pol(ctx, actions) != 0 {
		t.Error("greedy policy should pick the good action")
	}
}

func TestContextDependentLearning(t *testing.T) {
	// The best action depends on the context: in ctxA action 0 wins, in
	// ctxB action 1 wins. A linear model over ctx×action crosses must
	// separate them.
	s := New(DefaultConfig(3))
	ctxA := Context{Features: []string{"kind:A"}}
	ctxB := Context{Features: []string{"kind:B"}}
	actions := twoActions()
	for i := 0; i < 600; i++ {
		ctx, winner := ctxA, 0
		if i%2 == 1 {
			ctx, winner = ctxB, 1
		}
		r, _ := s.RankUniform(ctx, actions)
		reward := 0.0
		if r.Chosen == winner {
			reward = 1
		}
		s.Reward(r.EventID, reward)
	}
	s.Train()
	pol := s.GreedyPolicy()
	if pol(ctxA, actions) != 0 {
		t.Error("ctxA should prefer action 0")
	}
	if pol(ctxB, actions) != 1 {
		t.Error("ctxB should prefer action 1")
	}
}

func TestEpsilonGreedyExploresSometimes(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Epsilon = 0.5
	s := New(cfg)
	ctx := Context{Features: []string{"x"}}
	actions := twoActions()
	// Bias the model hard toward action 0.
	for i := 0; i < 100; i++ {
		r, _ := s.RankUniform(ctx, actions)
		reward := 0.0
		if r.Chosen == 0 {
			reward = 1
		}
		s.Reward(r.EventID, reward)
	}
	s.Train()
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		r, _ := s.Rank(ctx, actions)
		counts[r.Chosen]++
	}
	if counts[1] == 0 {
		t.Error("epsilon-greedy should still explore the worse action")
	}
	if counts[0] <= counts[1] {
		t.Error("learned policy should mostly exploit the better action")
	}
}

func TestPropensitiesAreConsistent(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Epsilon = 0.2
	s := New(cfg)
	ctx := Context{Features: []string{"x"}}
	actions := twoActions()
	for i := 0; i < 50; i++ {
		r, _ := s.Rank(ctx, actions)
		// With k=2, eps=0.2: probs are either 0.9 (greedy) or 0.1.
		if math.Abs(r.Prob-0.9) > 1e-9 && math.Abs(r.Prob-0.1) > 1e-9 {
			t.Fatalf("unexpected propensity %v", r.Prob)
		}
	}
	r, _ := s.RankUniform(ctx, actions)
	if math.Abs(r.Prob-0.5) > 1e-9 {
		t.Errorf("uniform propensity = %v, want 0.5", r.Prob)
	}
}

func TestTrainSkipsUnrewardedAndRetrained(t *testing.T) {
	s := New(DefaultConfig(1))
	ctx := Context{Features: []string{"x"}}
	r1, _ := s.Rank(ctx, twoActions())
	s.Rank(ctx, twoActions()) // never rewarded
	s.Reward(r1.EventID, 1)
	if n := s.Train(); n != 1 {
		t.Errorf("first train = %d, want 1", n)
	}
	if n := s.Train(); n != 0 {
		t.Errorf("second train = %d, want 0 (already trained)", n)
	}
}

func TestCounterfactualValue(t *testing.T) {
	s := New(DefaultConfig(13))
	ctx := Context{Features: []string{"x"}}
	actions := twoActions()
	for i := 0; i < 400; i++ {
		r, _ := s.RankUniform(ctx, actions)
		reward := 0.0
		if r.Chosen == 0 {
			reward = 1
		}
		s.Reward(r.EventID, reward)
	}
	alwaysGood := func(Context, []Action) int { return 0 }
	alwaysBad := func(Context, []Action) int { return 1 }
	vGood, err := s.CounterfactualValue(alwaysGood)
	if err != nil {
		t.Fatal(err)
	}
	vBad, _ := s.CounterfactualValue(alwaysBad)
	// True values are 1.0 and 0.0; IPS is unbiased, so estimates should
	// be near those.
	if math.Abs(vGood-1) > 0.25 {
		t.Errorf("V(good) = %v, want ~1", vGood)
	}
	if math.Abs(vBad) > 0.25 {
		t.Errorf("V(bad) = %v, want ~0", vBad)
	}
	empty := New(DefaultConfig(1))
	if _, err := empty.CounterfactualValue(alwaysGood); err == nil {
		t.Error("empty log should error")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []int {
		s := New(DefaultConfig(42))
		var picks []int
		for i := 0; i < 30; i++ {
			ctx := Context{Features: []string{fmt.Sprintf("c%d", i%3)}}
			r, _ := s.Rank(ctx, twoActions())
			s.Reward(r.EventID, float64(r.Chosen))
			if i%10 == 9 {
				s.Train()
			}
			picks = append(picks, r.Chosen)
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at step %d", i)
		}
	}
}

func TestLogGrowth(t *testing.T) {
	s := New(DefaultConfig(1))
	for i := 0; i < 5; i++ {
		s.Rank(Context{}, twoActions())
	}
	if s.LogSize() != 5 {
		t.Errorf("log size = %d", s.LogSize())
	}
	if len(s.Events()) != 5 {
		t.Errorf("events = %d", len(s.Events()))
	}
}

func TestTopWeights(t *testing.T) {
	s := New(DefaultConfig(2))
	ctx := Context{Features: []string{"x"}}
	actions := twoActions()
	for i := 0; i < 50; i++ {
		r, _ := s.RankUniform(ctx, actions)
		s.Reward(r.EventID, float64(1-r.Chosen))
	}
	s.Train()
	top := s.TopWeights(5)
	if len(top) == 0 {
		t.Error("expected nonzero weights after training")
	}
	if len(top) > 5 {
		t.Errorf("top weights = %d, want <= 5", len(top))
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	s := New(Config{})
	if s.cfg.Dim <= 0 || s.cfg.Epsilon <= 0 || s.cfg.LearningRate <= 0 || s.cfg.MaxIPSWeight <= 0 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New(DefaultConfig(3))
	ctx := Context{Features: []string{"span:1", "span:9"}}
	actions := twoActions()
	for i := 0; i < 150; i++ {
		r, _ := s.RankUniform(ctx, actions)
		reward := 0.0
		if r.Chosen == 0 {
			reward = 1
		}
		s.Reward(r.EventID, reward)
	}
	s.Train()

	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(strings.NewReader(buf.String()), 99)
	if err != nil {
		t.Fatal(err)
	}
	// Scores must be bit-identical after a round trip.
	for _, a := range actions {
		if got, want := restored.Score(ctx, a), s.Score(ctx, a); got != want {
			t.Errorf("score(%s) = %v, want %v", a.ID, got, want)
		}
	}
	// The restored model ranks like the original.
	pol := restored.GreedyPolicy()
	if pol(ctx, actions) != s.GreedyPolicy()(ctx, actions) {
		t.Error("restored policy disagrees with the original")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage\n",
		"qoadvisor-bandit v1 dim=8 epsilon=0.1 lr=0.1 clip=10\nbadline\n",
		"qoadvisor-bandit v1 dim=8 epsilon=0.1 lr=0.1 clip=10\n99 1.5\n", // index out of range
		"qoadvisor-bandit v1 dim=8 epsilon=0.1 lr=0.1 clip=10\n1 xyz\n",
	}
	for _, src := range cases {
		if _, err := Load(strings.NewReader(src), 1); err == nil {
			t.Errorf("Load(%q) should fail", src)
		}
	}
}

func TestSaveSkipsZeroWeights(t *testing.T) {
	s := New(Config{Dim: 1 << 16, Seed: 1})
	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 1 { // header only
		t.Errorf("untrained model should save only the header, got %d lines", lines)
	}
}

// TestPreHashedIDsMatchStringFeatures is the adapter guarantee: a context
// or action described by string tokens scores identically to the same
// features pre-hashed through HashFeatures — the two representations are
// one feature space.
func TestPreHashedIDsMatchStringFeatures(t *testing.T) {
	s := New(Config{Dim: 1 << 12, Seed: 5})
	ctxToks := []string{"span:3", "span:17", "rows:5"}
	actToks := []string{"rule:10", "cat:off-by-default"}
	ctxStr := Context{Features: ctxToks}
	actStr := Action{ID: "+R010", Features: actToks}
	ctxIDs := Context{IDs: HashFeatures(ctxToks)}
	actIDs := Action{ID: "+R010", IDs: HashFeatures(actToks)}

	// Train through the string path...
	r, err := s.Rank(ctxStr, []Action{actStr})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reward(r.EventID, 1.7); err != nil {
		t.Fatal(err)
	}
	s.Train()

	// ...and score through both: they must agree bit-for-bit.
	want := s.Score(ctxStr, actStr)
	if want == 0 {
		t.Fatal("training left the scored pair at zero")
	}
	if got := s.Score(ctxIDs, actIDs); got != want {
		t.Errorf("pre-hashed score %v != string score %v", got, want)
	}
	// Mixed representations agree too.
	if got := s.Score(ctxIDs, actStr); got != want {
		t.Errorf("mixed score %v != %v", got, want)
	}
}

// TestSuspendEvictionComposes covers the suspension counter: holds nest,
// release is idempotent, and a SetMaxLog issued mid-suspension takes
// effect — rather than being clobbered by a stale restore — once the last
// hold is released.
func TestSuspendEvictionComposes(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxLogEvents = 4
	s := New(cfg)
	rank := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := s.Rank(Context{IDs: []uint64{1}}, []Action{{ID: "a", IDs: []uint64{2}}}); err != nil {
				t.Fatal(err)
			}
		}
	}

	r1 := s.SuspendEviction()
	r2 := s.SuspendEviction()
	rank(20)
	if n := s.LogSize(); n != 20 {
		t.Fatalf("log size %d during suspension, want 20 (no eviction)", n)
	}
	r1()
	r1() // idempotent: must not release r2's hold
	rank(1)
	if n := s.LogSize(); n != 21 {
		t.Fatalf("log size %d with one hold left, want 21 (still suspended)", n)
	}
	s.SetMaxLog(8) // issued mid-suspension; must win after release
	r2()
	rank(1)
	if n := s.LogSize(); n > 8+8/4 {
		t.Fatalf("log size %d after release, want <= %d (cap 8 + slack)", n, 8+8/4)
	}
	if n := s.LogSize(); n <= 4+4/4 {
		t.Fatalf("log size %d after release: the mid-suspension SetMaxLog(8) was clobbered by a stale cap", n)
	}
}

// TestRankGreedyReadOnly pins the follower serving contract: RankGreedy
// returns the same argmax as the exploit arm of Rank, mutates nothing
// (no event logged, no rng consumed), and is deterministic.
func TestRankGreedyReadOnly(t *testing.T) {
	svc := New(DefaultConfig(11))
	ctx := Context{Features: []string{"spanbit:3", "spanbit:9"}}
	actions := []Action{{ID: "noop"}, {ID: "flip-a", Features: []string{"rule:12"}}, {ID: "flip-b", Features: []string{"rule:40"}}}

	// Train a little so the argmax is non-trivial.
	for i := 0; i < 20; i++ {
		r, err := svc.Rank(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		reward := 0.0
		if r.Chosen == 1 {
			reward = 1.0
		}
		if err := svc.Reward(r.EventID, reward); err != nil {
			t.Fatal(err)
		}
	}
	svc.Train()

	before := svc.LogSize()
	g1, err := svc.RankGreedy(ctx, actions)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := svc.RankGreedy(ctx, actions)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Chosen != g2.Chosen || g1.Prob != g2.Prob {
		t.Fatalf("RankGreedy not deterministic: %+v vs %+v", g1, g2)
	}
	if g1.EventID != "" {
		t.Fatalf("RankGreedy assigned event ID %q", g1.EventID)
	}
	if svc.LogSize() != before {
		t.Fatalf("RankGreedy grew the event log %d -> %d", before, svc.LogSize())
	}
	// The greedy choice must equal the model's argmax.
	best := 0
	for i := range actions {
		if svc.Score(ctx, actions[i]) > svc.Score(ctx, actions[best]) {
			best = i
		}
	}
	if g1.Chosen != best {
		t.Fatalf("RankGreedy chose %d, argmax is %d", g1.Chosen, best)
	}
}
