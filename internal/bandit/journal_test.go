package bandit

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func TestRankRecordRoundTrip(t *testing.T) {
	cases := []RankRecord{
		{EventID: "evabc-00000001", Prob: 0.925, CtxIDs: []uint64{1, math.MaxUint64, 0xdeadbeef}, ActIDs: []uint64{42}},
		{EventID: "e", Prob: 1.0 / 3.0, CtxIDs: nil, ActIDs: nil},
	}
	for _, want := range cases {
		p := EncodeRankRecord(want.EventID, want.Prob, want.CtxIDs, want.ActIDs)
		got, err := DecodeRankRecord(p)
		if err != nil {
			t.Fatalf("DecodeRankRecord: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip = %+v, want %+v", got, want)
		}
	}
	// Truncation fails loudly at every cut point (the CRC layer should
	// catch this first, but the codec must not panic or misread).
	full := EncodeRankRecord("evx-1", 0.5, []uint64{7, 8}, []uint64{9})
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeRankRecord(full[:cut]); err == nil && cut < len(full) {
			t.Fatalf("truncated rank record at %d decoded without error", cut)
		}
	}
}

func TestRewardBatchRoundTrip(t *testing.T) {
	want := []RewardEntry{
		{EventID: "ev1", Value: 1.5},
		{EventID: "ev2", Value: -0.25},
		{EventID: "ev3", Value: math.Inf(1)},
	}
	got, err := DecodeRewardBatch(EncodeRewardBatch(want))
	if err != nil {
		t.Fatalf("DecodeRewardBatch: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if _, err := DecodeRewardBatch(EncodeRankRecord("x", 1, nil, nil)); err == nil {
		t.Error("reward decoder accepted a rank record")
	}
}

// memJournal is an in-memory Journal for bandit-level tests.
type memJournal struct {
	recs [][]byte
}

func (m *memJournal) Append(p []byte) (uint64, error) {
	m.recs = append(m.recs, append([]byte(nil), p...))
	return uint64(len(m.recs)), nil
}
func (m *memJournal) LastLSN() uint64 { return uint64(len(m.recs)) }

// TestReplayRebuildsBitIdenticalModel is the bandit-level determinism
// core: a live service journals its rank decisions; feeding those
// records plus the reward batches through a Replayer into a fresh
// service reproduces the exact weights and open events.
func TestReplayRebuildsBitIdenticalModel(t *testing.T) {
	const trainEvery = 8
	live := New(Config{Dim: 1 << 12, Epsilon: 0.2, LearningRate: 0.1, MaxIPSWeight: 20, Seed: 11})
	j := &memJournal{}
	live.AttachJournal(j)

	ctx := Context{IDs: []uint64{0x1111, 0x2222}}
	actions := []Action{
		{ID: "noop", IDs: []uint64{0xaaaa}},
		{ID: "+R010", IDs: []uint64{0xbbbb, 0xcccc}},
		{ID: "-R042", IDs: []uint64{0xdddd}},
	}

	// Live run: rank, reward in batches (journaled like the ingestor
	// journals them), train every trainEvery applied rewards — the same
	// discipline the serve layer's single worker follows. Every 7th
	// event is left unrewarded so open events survive into Save.
	applied := 0
	var batch []RewardEntry
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		j.Append(EncodeRewardBatch(batch))
		for _, e := range batch {
			if err := live.Reward(e.EventID, e.Value); err != nil {
				t.Fatal(err)
			}
			applied++
			if applied%trainEvery == 0 {
				live.Train()
			}
		}
		batch = nil
	}
	for i := 0; i < 60; i++ {
		r, err := live.Rank(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			continue // never rewarded: stays open
		}
		batch = append(batch, RewardEntry{EventID: r.EventID, Value: 0.5 + 0.25*float64(r.Chosen)})
		if len(batch) == 5 {
			flushBatch()
		}
	}
	flushBatch()
	// Drain-equivalent shutdown flush, journaled as a train mark.
	j.Append(EncodeTrainMark())
	live.Train()
	live.SetWALWatermark(j.LastLSN())

	var want bytes.Buffer
	if err := live.Save(&want); err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh service with the same hyperparameters.
	rebuilt := New(Config{Dim: 1 << 12, Epsilon: 0.2, LearningRate: 0.1, MaxIPSWeight: 20, Seed: 99})
	rp := NewReplayer(rebuilt, trainEvery)
	for i, rec := range j.recs {
		if err := rp.Apply(uint64(i+1), rec); err != nil {
			t.Fatalf("Apply record %d: %v", i+1, err)
		}
	}
	rp.Finish()

	var got bytes.Buffer
	if err := rebuilt.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("replayed model differs from live model\nlive:\n%s\nreplayed:\n%s",
			firstLines(want.String(), 6), firstLines(got.String(), 6))
	}
	if rp.Stats.Ranks != 60 || rp.Stats.UnknownRewards != 0 {
		t.Errorf("replay stats = %+v", rp.Stats)
	}

	// And the rebuilt service keeps serving: rewards for open events
	// restored by replay still apply.
	evs := rebuilt.Events()
	found := false
	for _, ev := range evs {
		if !ev.Rewarded && !ev.Trained {
			if err := rebuilt.Reward(ev.EventID, 1.0); err != nil {
				t.Fatalf("rewarding replayed open event: %v", err)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no open event survived replay")
	}
}

// TestSnapshotPlusSuffixEquivalence covers the checkpoint boundary: a
// snapshot taken mid-run (with its WAL watermark) plus replay of only
// the journal suffix must reproduce the full-run model — including
// rewards that arrive after the checkpoint for events ranked before it
// (they travel in the snapshot's open-event section).
func TestSnapshotPlusSuffixEquivalence(t *testing.T) {
	const trainEvery = 4
	live := New(Config{Dim: 1 << 12, Epsilon: 0.2, LearningRate: 0.1, MaxIPSWeight: 20, Seed: 5})
	j := &memJournal{}
	live.AttachJournal(j)

	ctx := Context{IDs: []uint64{0x77}}
	actions := []Action{{IDs: []uint64{0x1}}, {IDs: []uint64{0x2}}}

	rank := func() string {
		r, err := live.Rank(ctx, actions)
		if err != nil {
			t.Fatal(err)
		}
		return r.EventID
	}
	applied := 0
	rewardNow := func(ids []string, v float64) {
		var batch []RewardEntry
		for _, id := range ids {
			batch = append(batch, RewardEntry{EventID: id, Value: v})
		}
		j.Append(EncodeRewardBatch(batch))
		for _, e := range batch {
			if err := live.Reward(e.EventID, e.Value); err != nil {
				t.Fatal(err)
			}
			applied++
			if applied%trainEvery == 0 {
				live.Train()
			}
		}
	}

	var pre []string
	for i := 0; i < 10; i++ {
		pre = append(pre, rank())
	}
	rewardNow(pre[:6], 1.0) // 6 applied: one train at 4, two pending

	// Checkpoint barrier: flush training (journaled as a mark), then
	// snapshot with the covering watermark. pre[6:] are still open and
	// must travel inside the snapshot. The flush resets the training
	// counter, exactly as the ingestor's trainFlush stores pending=0.
	j.Append(EncodeTrainMark())
	live.Train()
	applied = 0
	var snap bytes.Buffer
	if err := live.CheckpointTo(&snap); err != nil {
		t.Fatal(err)
	}
	cut := live.WALWatermark()
	if cut != j.LastLSN() {
		t.Fatalf("watermark %d, want journal end %d", cut, j.LastLSN())
	}

	// Post-checkpoint traffic, including rewards for pre-checkpoint
	// events (the straddling case).
	var post []string
	for i := 0; i < 5; i++ {
		post = append(post, rank())
	}
	rewardNow(append([]string{pre[7], pre[9]}, post[:3]...), 0.75)
	j.Append(EncodeTrainMark())
	live.Train()
	live.SetWALWatermark(j.LastLSN())

	var want bytes.Buffer
	if err := live.Save(&want); err != nil {
		t.Fatal(err)
	}

	// Recover: load the mid-run snapshot, replay only the suffix.
	restored, err := Load(bytes.NewReader(snap.Bytes()), 123)
	if err != nil {
		t.Fatal(err)
	}
	if restored.WALWatermark() != cut {
		t.Fatalf("restored watermark %d, want %d", restored.WALWatermark(), cut)
	}
	rp := NewReplayer(restored, trainEvery)
	for i, rec := range j.recs {
		if uint64(i+1) <= cut {
			continue
		}
		if err := rp.Apply(uint64(i+1), rec); err != nil {
			t.Fatal(err)
		}
	}
	rp.Finish()

	var got bytes.Buffer
	if err := restored.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("snapshot+suffix model differs from full live model\nlive:\n%s\nrecovered:\n%s",
			want.String(), got.String())
	}
}

func firstLines(s string, n int) string {
	out := ""
	for i := 0; i < len(s) && n > 0; i++ {
		out += string(s[i])
		if s[i] == '\n' {
			n--
		}
	}
	return out
}
