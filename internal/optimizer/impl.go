package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

// rowsPerPartition is the target number of rows a single vertex processes.
const rowsPerPartition = 200_000

// implBuilder lowers the rewritten logical DAG into a physical plan,
// choosing among enabled implementation rules per operator site, inserting
// exchanges, applying tuning rules, assigning stages and costing the plan.
type implBuilder struct {
	table  *ruleTable
	cat    *rules.Catalog
	stats  StatsProvider
	est    *cardEngine
	tokens int

	plan *Plan
	memo map[*scope.Node]*PhysNode
}

func newImplBuilder(cfg rules.Config, cat *rules.Catalog, sig *rules.Signature, stats StatsProvider, env Environment, tokens int) *implBuilder {
	return &implBuilder{
		table:  newRuleTable(cat, cfg, sig),
		cat:    cat,
		stats:  stats,
		est:    newCardEngine(env, stats),
		tokens: tokens,
		memo:   make(map[*scope.Node]*PhysNode),
	}
}

func (b *implBuilder) build(g *scope.Graph) (*Plan, error) {
	b.plan = &Plan{}
	for _, root := range g.Roots {
		pn, err := b.buildNode(root)
		if err != nil {
			return nil, err
		}
		b.plan.Roots = append(b.plan.Roots, pn)
	}
	b.applyTuning()
	b.assignStages()
	b.computeCost()
	return b.plan, nil
}

func (b *implBuilder) partitionsFor(rows float64) int {
	p := int(math.Ceil(rows / rowsPerPartition))
	if p < 1 {
		p = 1
	}
	if p > b.tokens {
		p = b.tokens
	}
	return p
}

func fail(format string, args ...interface{}) error {
	return &CompileFailure{Reason: fmt.Sprintf(format, args...)}
}

// newPhys allocates a physical node carrying over sizing from the logical
// node and its input.
func (b *implBuilder) newPhys(op PhysOp, ln *scope.Node, inputs ...*PhysNode) *PhysNode {
	n := b.plan.NewNode(op, ln, inputs...)
	if ln != nil {
		n.EstRows = b.est.rows(ln)
		n.RowWidth = ln.RowWidth()
	} else if len(inputs) > 0 {
		n.EstRows = inputs[0].EstRows
		n.RowWidth = inputs[0].RowWidth
	}
	if len(inputs) > 0 {
		n.Partitions = inputs[0].Partitions
		n.PartScheme = inputs[0].PartScheme
	}
	return n
}

// exchange inserts an exchange of the given kind above in, unless in
// already carries the required partitioning scheme. Hash exchanges fall
// back to range partitioning when the hash partitioner is disabled for
// the site.
func (b *implBuilder) exchange(in *PhysNode, kind ExchangeKind, key string, parts int, siteGate uint64) (*PhysNode, error) {
	scheme := ""
	switch kind {
	case ExchangeHash:
		scheme = "hash:" + key
	case ExchangeRange:
		scheme = "range:" + key
	case ExchangeBroadcast:
		scheme = "bcast"
	case ExchangeGather:
		scheme = "single"
		parts = 1
	case ExchangeRoundRobin:
		scheme = "rr"
	}
	if kind == ExchangeHash || kind == ExchangeRange {
		// Reuse existing co-location: hash or range partitioning on the
		// same key both co-locate equal keys.
		if in.PartScheme == "hash:"+key || in.PartScheme == "range:"+key {
			return in, nil
		}
	} else if in.PartScheme == scheme && kind != ExchangeBroadcast {
		return in, nil
	}

	switch kind {
	case ExchangeHash:
		if r, ok := b.table.pick(rules.KindImplHashPartition, siteGate); ok {
			b.table.fire(r)
		} else if r, ok := b.table.pick(rules.KindImplRangePartition, siteGate); ok {
			// Range partitioning also co-locates equal keys.
			b.table.fire(r)
			kind = ExchangeRange
			scheme = "range:" + key
		} else {
			return nil, fail("no partitioning implementation enabled for key %q", key)
		}
	case ExchangeRange:
		r, ok := b.table.pick(rules.KindImplRangePartition, siteGate)
		if !ok {
			return nil, fail("range partitioner disabled for key %q", key)
		}
		b.table.fire(r)
	case ExchangeRoundRobin:
		r, ok := b.table.pick(rules.KindImplRoundRobin, siteGate)
		if !ok {
			return nil, nil // optional rebalance: silently skipped
		}
		b.table.fire(r)
	}

	ex := b.plan.NewNode(PhysExchange, nil, in)
	ex.Exchange = kind
	ex.EstRows = in.EstRows
	ex.RowWidth = in.RowWidth
	ex.Partitions = parts
	ex.PartScheme = scheme
	ex.GateHint = siteGate
	return ex, nil
}

func (b *implBuilder) buildNode(n *scope.Node) (*PhysNode, error) {
	if pn, ok := b.memo[n]; ok {
		return pn, nil
	}
	pn, err := b.lower(n)
	if err != nil {
		return nil, err
	}
	b.memo[n] = pn
	return pn, nil
}

func (b *implBuilder) lower(n *scope.Node) (*PhysNode, error) {
	switch n.Kind {
	case scope.OpScan:
		return b.lowerScan(n)
	case scope.OpFilter:
		return b.lowerFilter(n)
	case scope.OpProject:
		in, err := b.buildNode(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return b.newPhys(PhysProject, n, in), nil
	case scope.OpProcess:
		in, err := b.buildNode(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return b.newPhys(PhysProcess, n, in), nil
	case scope.OpJoin:
		return b.lowerJoin(n)
	case scope.OpAgg:
		return b.lowerAgg(n)
	case scope.OpDistinct:
		return b.lowerDistinct(n)
	case scope.OpUnion:
		return b.lowerUnion(n)
	case scope.OpSort:
		return b.lowerSort(n)
	case scope.OpTop:
		return b.lowerTop(n)
	case scope.OpReduce:
		return b.lowerReduce(n)
	case scope.OpOutput:
		in, err := b.buildNode(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return b.newPhys(PhysOutput, n, in), nil
	default:
		return nil, fail("no lowering for operator %s", n.Kind)
	}
}

func (b *implBuilder) lowerScan(n *scope.Node) (*PhysNode, error) {
	g := gate(n)
	baseRows := b.est.env.BaseRows(n.TablePath)

	type cand struct {
		op   PhysOp
		rule rules.Rule
		cost float64
	}
	var cands []cand
	outRows := b.est.rows(n)
	width := float64(n.RowWidth())
	baseWidth := float64(n.BaseWidth)
	if baseWidth == 0 {
		baseWidth = width
	}
	// Candidate costs use the same formulas as the plan cost model, so
	// implementation choice is greedy with respect to the reported
	// estimated cost.
	if r, ok := b.table.pick(rules.KindImplRowScan, g); ok {
		cands = append(cands, cand{PhysRowScan, r, outRows*costCPUPerRow*0.6 + outRows*baseWidth*costIOPerByte})
	}
	if r, ok := b.table.pick(rules.KindImplColumnScan, g); ok {
		cands = append(cands, cand{PhysColumnScan, r, outRows*costCPUPerRow + outRows*width*costIOPerByte*0.7})
	}
	// An index seek is only feasible for selective pushed-down equality
	// predicates (simulating SCOPE structured streams).
	if n.Pred != nil && hasEqualityConjunct(n.Pred) && outRows < baseRows*0.05 {
		if r, ok := b.table.pick(rules.KindImplIndexSeek, g); ok {
			cands = append(cands, cand{PhysIndexSeek, r, outRows*costCPUPerRow + outRows*width*costIOPerByte*costSeekReduction})
		}
	}
	if len(cands) == 0 {
		return nil, fail("no scan implementation enabled for %s", n.TablePath)
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	b.table.fire(best.rule)

	pn := b.newPhys(best.op, n)
	pn.BaseWidth = n.BaseWidth
	pn.PartScheme = "rr"
	readRows := baseRows
	if best.op == PhysIndexSeek {
		readRows = outRows
	}
	pn.Partitions = b.partitionsFor(readRows)
	return pn, nil
}

func hasEqualityConjunct(pred scope.Expr) bool {
	for _, c := range scope.Conjuncts(pred) {
		if be, ok := c.(*scope.BinaryExpr); ok && be.Op == "==" {
			return true
		}
	}
	return false
}

func (b *implBuilder) lowerFilter(n *scope.Node) (*PhysNode, error) {
	in, err := b.buildNode(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	pn := b.newPhys(PhysFilter, n, in)
	// Rebalance after very selective filters to reclaim vertices.
	if pn.EstRows < in.EstRows/8 && in.Partitions > 4 {
		ex, err := b.exchange(pn, ExchangeRoundRobin, "", b.partitionsFor(pn.EstRows), gate(n))
		if err != nil {
			return nil, err
		}
		if ex != nil {
			return ex, nil
		}
	}
	return pn, nil
}

// joinImpl describes one physical join alternative under consideration.
type joinImpl struct {
	op   PhysOp
	rule rules.Rule
	cost float64
}

func (b *implBuilder) lowerJoin(n *scope.Node) (*PhysNode, error) {
	left, err := b.buildNode(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	right, err := b.buildNode(n.Inputs[1])
	if err != nil {
		return nil, err
	}
	g := gate(n)
	equi := HasEquiCond(n.JoinCond)
	leftKey, rightKey := equiKeys(n)

	build, probe := right, left
	if n.BuildLeft {
		build, probe = left, right
	}
	l, r := left.EstRows, right.EstRows
	lw, rw := float64(left.RowWidth), float64(right.RowWidth)
	buildRows := build.EstRows
	bw := float64(build.RowWidth)
	probeParts := probe.Partitions

	var cands []joinImpl
	if equi {
		if rule, ok := b.table.pick(rules.KindImplHashJoin, g); ok {
			cost := (l*lw+r*rw)*costExchangePerB + buildRows*costHashBuildRow + (l + r)
			cands = append(cands, joinImpl{PhysHashJoin, rule, cost})
		}
		if rule, ok := b.table.pick(rules.KindImplMergeJoin, g); ok {
			sortCost := l*costSortRowLog*math.Log2(math.Max(l, 2)) + r*costSortRowLog*math.Log2(math.Max(r, 2))
			cost := (l*lw+r*rw)*costExchangePerB + sortCost + 1.2*(l+r)
			cands = append(cands, joinImpl{PhysMergeJoin, rule, cost})
		}
		if rule, ok := b.table.pick(rules.KindImplBroadcastJoin, g); ok {
			cost := buildRows*bw*costBroadcastPerB*float64(probeParts) + buildRows*costHashBuildRow + (l + r)
			if tr, ok := b.table.pick(rules.KindTuneBroadcastThreshold, g); ok && tuneMatches(b.table, rules.KindTuneBroadcastThreshold, tr, g) {
				cost *= 0.5 // tuning rule biases toward broadcasting
			}
			cands = append(cands, joinImpl{PhysBroadcastJoin, rule, cost})
		}
	}
	if rule, ok := b.table.pick(rules.KindImplNestedLoopJoin, g); ok {
		cost := l*r*costNLJPerRowPair + buildRows*bw*costBroadcastPerB*float64(probeParts)
		cands = append(cands, joinImpl{PhysNestedLoopJoin, rule, cost})
	}
	if len(cands) == 0 {
		return nil, fail("no join implementation enabled for %s", n.JoinCond)
	}

	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	// The broadcast annotation overrides cost-based choice when feasible.
	if n.BroadcastRight {
		for _, c := range cands {
			if c.op == PhysBroadcastJoin {
				best = c
				break
			}
		}
	}
	b.table.fire(best.rule)

	switch best.op {
	case PhysHashJoin, PhysMergeJoin:
		parts := b.partitionsFor(l + r)
		lkey, rkey := leftKey, rightKey
		if lkey == "" {
			lkey, rkey = "cond", "cond"
		}
		lex, err := b.exchange(left, ExchangeHash, lkey, parts, g)
		if err != nil {
			return nil, err
		}
		rex, err := b.exchange(right, ExchangeHash, rkey, parts, g+1)
		if err != nil {
			return nil, err
		}
		if lex.Partitions != rex.Partitions {
			// Co-partitioned joins need matching partition counts; reuse
			// of pre-existing partitioning may disagree, so repartition
			// the smaller side.
			if lex.Partitions < rex.Partitions {
				lex, err = b.forceExchange(lex, ExchangeHash, lkey, rex.Partitions, g)
			} else {
				rex, err = b.forceExchange(rex, ExchangeHash, rkey, lex.Partitions, g+1)
			}
			if err != nil {
				return nil, err
			}
		}
		inputs := []*PhysNode{lex, rex}
		if n.BuildLeft {
			inputs = []*PhysNode{rex, lex} // probe first, build second
		}
		pn := b.newPhys(best.op, n, inputs...)
		pn.Partitions = lex.Partitions
		pn.PartScheme = lex.PartScheme
		return pn, nil

	default: // broadcast and nested-loop both broadcast the build side
		bex, err := b.forceExchange(build, ExchangeBroadcast, "", probeParts, g)
		if err != nil {
			return nil, err
		}
		pn := b.newPhys(best.op, n, probe, bex)
		pn.Partitions = probeParts
		pn.PartScheme = probe.PartScheme
		return pn, nil
	}
}

// forceExchange inserts an exchange even when the scheme already matches
// (used for broadcast and partition-count alignment).
func (b *implBuilder) forceExchange(in *PhysNode, kind ExchangeKind, key string, parts int, siteGate uint64) (*PhysNode, error) {
	scheme := "bcast"
	if kind == ExchangeHash {
		scheme = "hash:" + key
		if r, ok := b.table.pick(rules.KindImplHashPartition, siteGate); ok {
			b.table.fire(r)
		} else if r, ok := b.table.pick(rules.KindImplRangePartition, siteGate); ok {
			b.table.fire(r)
			kind = ExchangeRange
			scheme = "range:" + key
		} else {
			return nil, fail("no partitioning implementation enabled for key %q", key)
		}
	}
	ex := b.plan.NewNode(PhysExchange, nil, in)
	ex.Exchange = kind
	ex.EstRows = in.EstRows
	ex.RowWidth = in.RowWidth
	ex.Partitions = parts
	ex.PartScheme = scheme
	ex.GateHint = siteGate
	return ex, nil
}

func (b *implBuilder) lowerAgg(n *scope.Node) (*PhysNode, error) {
	in, err := b.buildNode(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	g := gate(n)

	op, rule, err := b.pickAggImpl(g, in.EstRows, b.est.rows(n))
	if err != nil {
		return nil, err
	}

	if n.Partial {
		// Partial aggregation is pipelined: no exchange.
		b.table.fire(rule)
		pn := b.newPhys(op, n, in)
		return pn, nil
	}

	var ex *PhysNode
	if len(n.GroupBy) == 0 {
		ex, err = b.exchange(in, ExchangeGather, "", 1, g)
	} else {
		names := make([]string, len(n.GroupBy))
		for i, c := range n.GroupBy {
			names[i] = c.Name
		}
		key := strings.Join(names, ",")
		ex, err = b.exchange(in, ExchangeHash, key, b.partitionsFor(in.EstRows), g)
	}
	if err != nil {
		return nil, err
	}
	b.table.fire(rule)
	pn := b.newPhys(op, n, ex)
	pn.Partitions = ex.Partitions
	pn.PartScheme = ex.PartScheme
	return pn, nil
}

func (b *implBuilder) pickAggImpl(g uint64, inRows, outRows float64) (PhysOp, rules.Rule, error) {
	type cand struct {
		op   PhysOp
		rule rules.Rule
		cost float64
	}
	var cands []cand
	if r, ok := b.table.pick(rules.KindImplHashAgg, g); ok {
		cands = append(cands, cand{PhysHashAgg, r, inRows*1.5 + outRows})
	}
	if r, ok := b.table.pick(rules.KindImplStreamAgg, g); ok {
		cands = append(cands, cand{PhysStreamAgg, r, inRows*(0.6+0.055*math.Log2(math.Max(inRows, 2))) + outRows*0.5})
	}
	if len(cands) == 0 {
		return 0, rules.Rule{}, fail("no aggregation implementation enabled")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	return best.op, best.rule, nil
}

func (b *implBuilder) lowerDistinct(n *scope.Node) (*PhysNode, error) {
	in, err := b.buildNode(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	g := gate(n)
	op, rule, err := b.pickAggImpl(g, in.EstRows, b.est.rows(n))
	if err != nil {
		return nil, err
	}
	names := n.ColNames()
	sort.Strings(names)
	key := strings.Join(names, ",")
	ex, err := b.exchange(in, ExchangeHash, key, b.partitionsFor(in.EstRows), g)
	if err != nil {
		return nil, err
	}
	b.table.fire(rule)
	pn := b.newPhys(op, n, ex)
	pn.Partitions = ex.Partitions
	pn.PartScheme = ex.PartScheme
	return pn, nil
}

func (b *implBuilder) lowerUnion(n *scope.Node) (*PhysNode, error) {
	var ins []*PhysNode
	sumParts := 0
	sumRows := 0.0
	for _, in := range n.Inputs {
		pin, err := b.buildNode(in)
		if err != nil {
			return nil, err
		}
		ins = append(ins, pin)
		sumParts += pin.Partitions
		sumRows += pin.EstRows
	}
	g := gate(n)
	type cand struct {
		op   PhysOp
		rule rules.Rule
		cost float64
	}
	var cands []cand
	if r, ok := b.table.pick(rules.KindImplConcatUnion, g); ok {
		cands = append(cands, cand{PhysConcatUnion, r, sumRows * 0.2})
	}
	if r, ok := b.table.pick(rules.KindImplSortedUnion, g); ok {
		cands = append(cands, cand{PhysSortedUnion, r, sumRows * 0.6})
	}
	if len(cands) == 0 {
		return nil, fail("no union implementation enabled")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	b.table.fire(best.rule)
	pn := b.newPhys(best.op, n, ins...)
	if best.op == PhysConcatUnion {
		if sumParts > b.tokens {
			sumParts = b.tokens
		}
		pn.Partitions = sumParts
		pn.PartScheme = "rr"
	} else {
		pn.Partitions = 1
		pn.PartScheme = "single"
	}
	return pn, nil
}

func sortKeyNames(keys []scope.SortKey) string {
	names := make([]string, len(keys))
	for i, k := range keys {
		names[i] = k.Col.Name
	}
	return strings.Join(names, ",")
}

func (b *implBuilder) lowerSort(n *scope.Node) (*PhysNode, error) {
	in, err := b.buildNode(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	g := gate(n)
	rule, ok := b.table.pick(rules.KindImplExternalSort, g)
	if !ok {
		return nil, fail("sort implementation disabled for keys %s", sortKeyNames(n.SortKeys))
	}
	ex, err := b.exchange(in, ExchangeRange, sortKeyNames(n.SortKeys), b.partitionsFor(in.EstRows), g)
	if err != nil {
		return nil, err
	}
	b.table.fire(rule)
	pn := b.newPhys(PhysSort, n, ex)
	pn.Partitions = ex.Partitions
	pn.PartScheme = ex.PartScheme
	return pn, nil
}

func (b *implBuilder) lowerTop(n *scope.Node) (*PhysNode, error) {
	in, err := b.buildNode(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	g := gate(n)
	type cand struct {
		op   PhysOp
		rule rules.Rule
		cost float64
	}
	var cands []cand
	inRows := in.EstRows
	if r, ok := b.table.pick(rules.KindImplTopNHeap, g); ok {
		cands = append(cands, cand{PhysTopNHeap, r, inRows * 1.2})
	}
	if r, ok := b.table.pick(rules.KindImplExternalSort, g); ok {
		cands = append(cands, cand{PhysTopNSort, r, inRows * costSortRowLog * math.Log2(math.Max(inRows, 2))})
	}
	if len(cands) == 0 {
		return nil, fail("no top-n implementation enabled")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.cost < best.cost {
			best = c
		}
	}
	b.table.fire(best.rule)

	// Local top per partition, then gather and finalize.
	local := b.newPhys(best.op, n, in)
	ex, err := b.exchange(local, ExchangeGather, "", 1, g)
	if err != nil {
		return nil, err
	}
	final := b.newPhys(best.op, n, ex)
	final.Partitions = 1
	final.PartScheme = "single"
	return final, nil
}

func (b *implBuilder) lowerReduce(n *scope.Node) (*PhysNode, error) {
	in, err := b.buildNode(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	g := gate(n)
	var ex *PhysNode
	if len(n.GroupBy) == 0 {
		ex, err = b.exchange(in, ExchangeGather, "", 1, g)
	} else {
		names := make([]string, len(n.GroupBy))
		for i, c := range n.GroupBy {
			names[i] = c.Name
		}
		ex, err = b.exchange(in, ExchangeHash, strings.Join(names, ","), b.partitionsFor(in.EstRows), g)
	}
	if err != nil {
		return nil, err
	}
	pn := b.newPhys(PhysReduce, n, ex)
	pn.Partitions = ex.Partitions
	pn.PartScheme = ex.PartScheme
	return pn, nil
}

// --- Tuning, staging, costing ---

// tuneMatches reports whether a tuning rule's fingerprint gate matches the
// site. Each tuning kind has many sibling rules; rule i of a kind governs
// the sites whose gate hash lands on residue i.
func tuneMatches(t *ruleTable, kind rules.Kind, r rules.Rule, g uint64) bool {
	rs := t.byKind[kind]
	if len(rs) == 0 {
		return false
	}
	idx := -1
	for i, rr := range rs {
		if rr.ID == r.ID {
			idx = i
			break
		}
	}
	return idx >= 0 && int(g%uint64(len(rs))) == idx
}

// gateOf returns the gating hash of a physical node: the logical site's
// gate where available, otherwise derived from the exchange's input.
func gateOf(n *PhysNode) uint64 {
	if n.GateHint != 0 {
		return n.GateHint
	}
	if n.Logical != nil {
		return gate(n.Logical)
	}
	if len(n.Inputs) > 0 && n.Inputs[0].Logical != nil {
		return gate(n.Inputs[0].Logical) ^ 0x5bd1e995
	}
	return uint64(n.ID) * 2654435761
}

// applyTuning applies the enabled tuning rules to matching plan fragments.
func (b *implBuilder) applyTuning() {
	nodes := b.plan.Nodes()
	apply := func(kind rules.Kind, f func(n *PhysNode, r rules.Rule) bool) {
		for _, r := range b.table.byKind[kind] {
			if !b.table.cfg.Enabled(r.ID) {
				continue
			}
			fired := false
			for _, n := range nodes {
				if tuneMatches(b.table, kind, r, gateOf(n)) && f(n, r) {
					fired = true
				}
			}
			if fired {
				b.table.fire(r)
			}
		}
	}

	apply(rules.KindTunePartitionCount, func(n *PhysNode, r rules.Rule) bool {
		if !n.IsExchange() || n.Exchange == ExchangeGather || n.Exchange == ExchangeBroadcast {
			return false
		}
		if r.Variant%2 == 0 {
			if n.Partitions <= 1 {
				return false
			}
			n.Partitions = (n.Partitions + 1) / 2
		} else {
			if n.Partitions >= b.tokens {
				return false
			}
			n.Partitions = minInt(n.Partitions*2, b.tokens)
		}
		return true
	})

	apply(rules.KindTuneStageFusion, func(n *PhysNode, r rules.Rule) bool {
		if !n.IsExchange() || n.Exchange != ExchangeRoundRobin || n.Fused {
			return false
		}
		n.Fused = true
		return true
	})

	apply(rules.KindTuneVertexPacking, func(n *PhysNode, r rules.Rule) bool {
		switch n.Op {
		case PhysRowScan, PhysColumnScan, PhysIndexSeek:
		default:
			return false
		}
		if r.Variant%2 == 0 {
			if n.Partitions <= 1 {
				return false
			}
			n.PackFactor = 2
			n.Partitions = (n.Partitions + 1) / 2
		} else {
			if n.Partitions >= b.tokens {
				return false
			}
			n.PackFactor = 0.5
			n.Partitions = minInt(n.Partitions*2, b.tokens)
		}
		return true
	})

	apply(rules.KindTuneExchangeCompression, func(n *PhysNode, r rules.Rule) bool {
		if !n.IsExchange() || n.Compress || n.Fused {
			return false
		}
		n.Compress = true
		return true
	})

	apply(rules.KindTuneSortBuffer, func(n *PhysNode, r rules.Rule) bool {
		if n.Op != PhysSort && n.Op != PhysTopNSort {
			return false
		}
		if n.PackFactor == 0.8 {
			return false
		}
		n.PackFactor = 0.8
		return true
	})

	// Fused exchanges become transparent: downstream inherits upstream
	// partitioning.
	for _, n := range nodes {
		if n.Fused && len(n.Inputs) > 0 {
			n.Partitions = n.Inputs[0].Partitions
			n.PartScheme = n.Inputs[0].PartScheme
		}
	}
	// Propagate adjusted partition counts through pipelines so stage
	// parallelism (and hence vertices and startup cost) reflects the
	// tuning: pipelined operators run at their input's parallelism.
	for _, n := range nodes { // topological order: inputs first
		if n.IsExchange() || len(n.Inputs) == 0 {
			continue
		}
		if n.Op == PhysConcatUnion {
			sum := 0
			for _, in := range n.Inputs {
				sum += in.Partitions
			}
			n.Partitions = minInt(sum, b.tokens)
			continue
		}
		n.Partitions = n.Inputs[0].Partitions
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// assignStages groups pipelined operators into stages. Non-fused exchanges
// are stage boundaries: the exchange belongs to the downstream stage and
// its input starts a new upstream stage.
func (b *implBuilder) assignStages() {
	nextStage := 0
	assigned := make(map[*PhysNode]bool)
	var visit func(n *PhysNode, stage int)
	visit = func(n *PhysNode, stage int) {
		if assigned[n] {
			return
		}
		assigned[n] = true
		n.StageID = stage
		boundary := n.IsExchange() && !n.Fused
		for _, in := range n.Inputs {
			if boundary {
				nextStage++
				visit(in, nextStage)
			} else {
				visit(in, stage)
			}
		}
	}
	for _, r := range b.plan.Roots {
		nextStage++
		visit(r, nextStage)
	}

	// Collect stages.
	byID := make(map[int]*Stage)
	for _, n := range b.plan.Nodes() {
		s := byID[n.StageID]
		if s == nil {
			s = &Stage{ID: n.StageID, Partitions: 1}
			byID[n.StageID] = s
		}
		s.Nodes = append(s.Nodes, n)
		if n.Partitions > s.Partitions {
			s.Partitions = n.Partitions
		}
	}
	for _, n := range b.plan.Nodes() {
		if n.IsExchange() && !n.Fused {
			down := byID[n.StageID]
			for _, in := range n.Inputs {
				down.InputIDs = append(down.InputIDs, in.StageID)
			}
		}
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	b.plan.Stages = b.plan.Stages[:0]
	for _, id := range ids {
		b.plan.Stages = append(b.plan.Stages, byID[id])
	}
}

// computeCost sums per-operator estimated costs plus per-vertex startup.
func (b *implBuilder) computeCost() {
	total := 0.0
	for _, n := range b.plan.Nodes() {
		if n.Fused {
			continue
		}
		var inRows []float64
		for _, in := range n.Inputs {
			inRows = append(inRows, in.EstRows)
		}
		c := nodeCost(n, inRows, n.EstRows)
		if (n.Op == PhysSort || n.Op == PhysTopNSort) && n.PackFactor > 0 && n.PackFactor != 1 {
			c *= n.PackFactor
		}
		total += c
	}
	vertices := 0
	for _, s := range b.plan.Stages {
		vertices += s.Partitions
	}
	total += float64(vertices) * costStartupPerPart
	b.plan.EstCost = total
	b.plan.EstVertices = vertices
}
