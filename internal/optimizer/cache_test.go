package optimizer

import (
	"sync"
	"testing"

	"qoadvisor/internal/rules"
)

// flipConfigs returns the default config plus every single-rule flip over
// the non-required catalog, a superset of what span computation and
// recommendation recompile.
func flipConfigs(cat *rules.Catalog, limit int) []rules.Config {
	def := cat.DefaultConfig()
	out := []rules.Config{def}
	for _, r := range cat.All() {
		if r.Category == rules.Required {
			continue
		}
		out = append(out, def.WithFlip(cat.FlipFor(r.ID)))
		if len(out) >= limit {
			break
		}
	}
	return out
}

// TestCachedOptimizeMatchesUncached is the cache's core guarantee: for
// any configuration, a cached compilation is bit-identical to a fresh
// one — same cost, signature, vertex count, and failure behaviour.
func TestCachedOptimizeMatchesUncached(t *testing.T) {
	g := compileTestGraph(t, testScript)
	cat := rules.NewCatalog()
	cache := NewCompileCache(0)
	stats := testStats()

	for _, cfg := range flipConfigs(cat, 60) {
		plain, errPlain := Optimize(g, cfg, Options{Catalog: cat, Stats: stats})
		// Compile twice through the cache so the second call is a hit.
		if _, err := Optimize(g, cfg, Options{Catalog: cat, Stats: stats, Cache: cache}); (err == nil) != (errPlain == nil) {
			t.Fatalf("cache miss path disagrees on error: %v vs %v", err, errPlain)
		}
		cached, errCached := Optimize(g, cfg, Options{Catalog: cat, Stats: stats, Cache: cache})
		if (errCached == nil) != (errPlain == nil) {
			t.Fatalf("cache hit path disagrees on error: %v vs %v", errCached, errPlain)
		}
		if errPlain != nil {
			continue
		}
		if cached.EstCost != plain.EstCost {
			t.Errorf("cfg %v: cached cost %v != uncached %v", cfg.DiffFrom(cat.DefaultConfig()), cached.EstCost, plain.EstCost)
		}
		if !cached.Signature.Equal(plain.Signature.Bitset) {
			t.Errorf("cfg %v: cached signature differs", cfg.DiffFrom(cat.DefaultConfig()))
		}
		if cached.Plan.EstVertices != plain.Plan.EstVertices {
			t.Errorf("cfg %v: cached vertices %d != %d", cfg.DiffFrom(cat.DefaultConfig()), cached.Plan.EstVertices, plain.Plan.EstVertices)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", st)
	}
}

// TestCompileCacheHitCounts checks the lookup accounting: one miss per
// distinct (graph, config), hits afterwards.
func TestCompileCacheHitCounts(t *testing.T) {
	g := compileTestGraph(t, testScript)
	cat := rules.NewCatalog()
	cache := NewCompileCache(0)
	opts := Options{Catalog: cat, Stats: testStats(), Cache: cache}
	def := cat.DefaultConfig()

	for i := 0; i < 3; i++ {
		if _, err := Optimize(g, def, opts); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", st)
	}
	// A second graph of the same script is a distinct key: the cache is
	// identity-keyed, not content-keyed.
	g2 := compileTestGraph(t, testScript)
	if _, err := Optimize(g2, def, opts); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("distinct graph pointer must miss: %+v", st)
	}
}

// TestCompileCacheEviction checks capacity-driven invalidation.
func TestCompileCacheEviction(t *testing.T) {
	g := compileTestGraph(t, testScript)
	cat := rules.NewCatalog()
	cache := NewCompileCache(4)
	opts := Options{Catalog: cat, Stats: testStats(), Cache: cache}

	cfgs := flipConfigs(cat, 8)
	for _, cfg := range cfgs {
		Optimize(g, cfg, opts) // some flips legitimately fail to compile
	}
	if st := cache.Stats(); st.Size > 4 {
		t.Errorf("size %d exceeds cap 4", st.Size)
	}
	// The oldest config was evicted; compiling it again is a miss.
	before := cache.Stats().Misses
	Optimize(g, cfgs[0], opts)
	if got := cache.Stats().Misses; got != before+1 {
		t.Errorf("evicted config should recompile as a miss: %d -> %d", before, got)
	}
}

// TestCachedLogicalGraphSharedLoweringRace is the -race-verified
// guarantee the cache rests on: many goroutines lowering one shared
// rewritten logical DAG concurrently never write to logical nodes. Run
// with -race (CI does) to enforce it.
func TestCachedLogicalGraphSharedLoweringRace(t *testing.T) {
	g := compileTestGraph(t, testScript)
	cat := rules.NewCatalog()
	cache := NewCompileCache(0)
	stats := testStats()
	def := cat.DefaultConfig()
	opts := Options{Catalog: cat, Stats: stats, Cache: cache}

	// Prime the cache so every goroutine shares the same logical graph.
	ref, err := Optimize(g, def, opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	var wg sync.WaitGroup
	costs := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Optimize(g, def, opts)
			if err != nil {
				t.Error(err)
				return
			}
			if res.Logical != ref.Logical {
				t.Error("cache hit must reuse the shared logical graph")
			}
			costs[i] = res.EstCost
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if costs[i] != ref.EstCost {
			t.Fatalf("concurrent lowering diverged: %v != %v", costs[i], ref.EstCost)
		}
	}
}
