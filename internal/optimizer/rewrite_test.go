package optimizer

import (
	"strings"
	"testing"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

// optimizeSrc compiles and optimizes a script under a config derived from
// the default by the given mutation.
func optimizeSrc(t *testing.T, src string, stats MapStats, mutate func(*rules.Catalog, rules.Config) rules.Config) (*Result, *rules.Catalog) {
	t.Helper()
	g, err := scope.CompileScript(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cat := rules.NewCatalog()
	cfg := cat.DefaultConfig()
	if mutate != nil {
		cfg = mutate(cat, cfg)
	}
	res, err := Optimize(g, cfg, Options{Catalog: cat, Stats: stats})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return res, cat
}

// disableKinds turns off every sibling rule of the given kinds.
func disableKinds(kinds ...rules.Kind) func(*rules.Catalog, rules.Config) rules.Config {
	return func(cat *rules.Catalog, cfg rules.Config) rules.Config {
		want := make(map[rules.Kind]bool)
		for _, k := range kinds {
			want[k] = true
		}
		for _, r := range cat.All() {
			if want[r.Kind] {
				cfg = cfg.WithFlip(rules.Flip{RuleID: r.ID, Enable: false})
			}
		}
		return cfg
	}
}

// enableKinds turns on every sibling rule of the given kinds.
func enableKinds(kinds ...rules.Kind) func(*rules.Catalog, rules.Config) rules.Config {
	return func(cat *rules.Catalog, cfg rules.Config) rules.Config {
		want := make(map[rules.Kind]bool)
		for _, k := range kinds {
			want[k] = true
		}
		for _, r := range cat.All() {
			if want[r.Kind] {
				cfg = cfg.WithFlip(rules.Flip{RuleID: r.ID, Enable: true})
			}
		}
		return cfg
	}
}

func logicalKinds(g *scope.Graph) map[scope.OpKind]int {
	m := make(map[scope.OpKind]int)
	for _, n := range g.Nodes() {
		m[n.Kind]++
	}
	return m
}

const joinFilterScript = `
big = EXTRACT k:long, v:int, w:string FROM "data/big.tsv";
dim = EXTRACT k:long, name:string FROM "data/dim.tsv";
j = SELECT b.v, d.name FROM big AS b JOIN dim AS d ON b.k == d.k WHERE v > 5 AND name == "x";
OUTPUT j TO "out/j.tsv";`

var joinFilterStats = MapStats{
	"data/big.tsv": {Rows: 1e7, NDV: map[string]float64{"k": 1e6, "v": 100, "w": 50}},
	"data/dim.tsv": {Rows: 1e4, NDV: map[string]float64{"k": 1e4, "name": 100}},
}

func TestPushFilterBelowJoinSplitsConjuncts(t *testing.T) {
	res, _ := optimizeSrc(t, joinFilterScript, joinFilterStats, nil)
	// After pushdown, the filter conjuncts sit below the join: the join's
	// inputs must be filters or filtered scans, and no filter remains
	// above the join.
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpFilter && n.Inputs[0].Kind == scope.OpJoin {
			t.Errorf("filter still above join: %s", n.Label())
		}
	}
}

func TestPushdownDisabledKeepsFilterAboveJoin(t *testing.T) {
	res, _ := optimizeSrc(t, joinFilterScript, joinFilterStats, disableKinds(
		rules.KindPushFilterBelowJoin, rules.KindSplitComplexFilter,
		rules.KindPushFilterIntoScan, rules.KindPushFilterBelowProject))
	found := false
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpFilter && n.Inputs[0].Kind == scope.OpJoin {
			found = true
		}
	}
	if !found {
		t.Error("with pushdown disabled the filter should stay above the join")
	}
}

func TestPushFilterIntoScanMergesPredicate(t *testing.T) {
	src := `
t = EXTRACT a:int, b:int FROM "data/t.tsv";
x = SELECT a FROM t WHERE a > 3;
OUTPUT x TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 100, "b": 100}}}
	res, _ := optimizeSrc(t, src, st, nil)
	kinds := logicalKinds(res.Logical)
	if kinds[scope.OpFilter] != 0 {
		t.Errorf("filter should be merged into the scan, found %d filters", kinds[scope.OpFilter])
	}
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpScan && n.Pred == nil {
			t.Error("scan should carry the pushed predicate")
		}
	}
}

func TestLocalGlobalAggInsertsPartial(t *testing.T) {
	src := `
t = EXTRACT k:int, v:double FROM "data/t.tsv";
a = SELECT k, SUM(v) AS s FROM t GROUP BY k;
OUTPUT a TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 100, "v": 1e6}}}
	res, _ := optimizeSrc(t, src, st, nil)
	partials := 0
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpAgg && n.Partial {
			partials++
		}
	}
	if partials != 1 {
		t.Errorf("partial aggs = %d, want 1", partials)
	}
	// Disabled: no partial agg.
	res2, _ := optimizeSrc(t, src, st, disableKinds(rules.KindLocalGlobalAgg))
	for _, n := range res2.Logical.Nodes() {
		if n.Kind == scope.OpAgg && n.Partial {
			t.Error("partial agg inserted despite LocalGlobalAgg disabled")
		}
	}
}

func TestAvgAggregateIsNotSplit(t *testing.T) {
	src := `
t = EXTRACT k:int, v:double FROM "data/t.tsv";
a = SELECT k, AVG(v) AS m FROM t GROUP BY k;
OUTPUT a TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 100}}}
	res, _ := optimizeSrc(t, src, st, nil)
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpAgg && n.Partial {
			t.Error("AVG is not decomposable and must not be split")
		}
	}
}

func TestDistinctToAggRewrite(t *testing.T) {
	src := `
t = EXTRACT a:int FROM "data/t.tsv";
d = SELECT DISTINCT a FROM t;
OUTPUT d TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 100}}}
	res, _ := optimizeSrc(t, src, st, nil)
	kinds := logicalKinds(res.Logical)
	if kinds[scope.OpDistinct] != 0 {
		t.Error("distinct should rewrite to an aggregation under defaults")
	}
	res2, _ := optimizeSrc(t, src, st, disableKinds(rules.KindDistinctToAgg))
	kinds2 := logicalKinds(res2.Logical)
	if kinds2[scope.OpDistinct] != 1 {
		t.Error("distinct should survive with DistinctToAgg disabled")
	}
}

func TestSemiJoinReductionFires(t *testing.T) {
	// The join keeps no right-side columns: with the off-by-default
	// semi-join rule enabled, it becomes a semi join.
	src := `
l = EXTRACT k:long, v:int FROM "data/l.tsv";
r = EXTRACT k:long, extra:string FROM "data/r.tsv";
j = SELECT a.v FROM l AS a JOIN r AS b ON a.k == b.k;
OUTPUT j TO "o";`
	st := MapStats{
		"data/l.tsv": {Rows: 1e6, NDV: map[string]float64{"k": 1e5}},
		"data/r.tsv": {Rows: 1e5, NDV: map[string]float64{"k": 1e5}},
	}
	res, _ := optimizeSrc(t, src, st, enableKinds(rules.KindSemiJoinReduction))
	foundSemi := false
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpJoin && n.JoinType == scope.JoinSemi {
			foundSemi = true
		}
	}
	if !foundSemi {
		t.Error("semi-join reduction did not fire with the rule enabled")
	}
	// Default (off): inner join survives.
	res2, _ := optimizeSrc(t, src, st, nil)
	for _, n := range res2.Logical.Nodes() {
		if n.Kind == scope.OpJoin && n.JoinType == scope.JoinSemi {
			t.Error("semi-join reduction fired while off by default")
		}
	}
}

func TestColumnPruningNarrowsScans(t *testing.T) {
	src := `
t = EXTRACT a:int, b:string, c:string, d:string, e:double FROM "data/t.tsv";
x = SELECT a FROM t WHERE a > 1;
OUTPUT x TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 100}}}
	res, _ := optimizeSrc(t, src, st, nil)
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpScan {
			if len(n.Cols) != 1 || n.Cols[0].Name != "a" {
				t.Errorf("scan should be pruned to [a], got %v", n.ColNames())
			}
			if n.BaseWidth <= n.RowWidth() {
				t.Error("pruned width should be below the base width")
			}
		}
	}
	// Disabled: all five columns survive.
	res2, _ := optimizeSrc(t, src, st, disableKinds(rules.KindPruneColumns))
	for _, n := range res2.Logical.Nodes() {
		if n.Kind == scope.OpScan && len(n.Cols) != 5 {
			t.Errorf("unpruned scan should keep 5 columns, got %d", len(n.Cols))
		}
	}
}

func TestFlattenUnion(t *testing.T) {
	src := `
a = EXTRACT x:int FROM "data/a.tsv";
b = EXTRACT x:int FROM "data/b.tsv";
c = EXTRACT x:int FROM "data/c.tsv";
u1 = a UNION ALL b;
u2 = u1 UNION ALL c;
OUTPUT u2 TO "o";`
	st := MapStats{}
	res, _ := optimizeSrc(t, src, st, nil)
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpUnion {
			if len(n.Inputs) != 3 {
				t.Errorf("nested unions should flatten to a 3-way union, got %d-way", len(n.Inputs))
			}
			for _, in := range n.Inputs {
				if in.Kind == scope.OpUnion {
					t.Error("union input still a union after flattening")
				}
			}
		}
	}
}

func TestRemoveRedundantSortBelowAgg(t *testing.T) {
	src := `
t = EXTRACT k:int, v:int FROM "data/t.tsv";
s = SELECT k, v FROM t ORDER BY v;
a = SELECT k, COUNT(*) AS c FROM s GROUP BY k;
OUTPUT a TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"k": 100, "v": 1e4}}}
	res, _ := optimizeSrc(t, src, st, nil)
	kinds := logicalKinds(res.Logical)
	if kinds[scope.OpSort] != 0 {
		t.Error("sort below an aggregation is redundant and should be removed")
	}
	res2, _ := optimizeSrc(t, src, st, disableKinds(rules.KindRemoveRedundantSort))
	kinds2 := logicalKinds(res2.Logical)
	if kinds2[scope.OpSort] != 1 {
		t.Error("sort should survive with the removal rule disabled")
	}
}

func TestTopNPushdownThroughUnion(t *testing.T) {
	src := `
a = EXTRACT x:int FROM "data/a.tsv";
b = EXTRACT x:int FROM "data/b.tsv";
u = a UNION ALL b;
t10 = SELECT * FROM u ORDER BY x DESC TOP 10;
OUTPUT t10 TO "o";`
	st := MapStats{}
	res, _ := optimizeSrc(t, src, st, nil)
	tops := 0
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpTop {
			tops++
		}
	}
	// Outer top plus one pushed top per union input.
	if tops < 3 {
		t.Errorf("tops = %d, want >= 3 after pushdown", tops)
	}
}

func TestJoinCommuteMarksBuildLeft(t *testing.T) {
	// Left side smaller than right: commute should mark BuildLeft.
	src := `
small = EXTRACT k:long, s:int FROM "data/small.tsv";
big = EXTRACT k:long, v:int FROM "data/big.tsv";
j = SELECT a.s, b.v FROM small AS a JOIN big AS b ON a.k == b.k;
OUTPUT j TO "o";`
	st := MapStats{
		"data/small.tsv": {Rows: 1e3, NDV: map[string]float64{"k": 1e3}},
		"data/big.tsv":   {Rows: 1e7, NDV: map[string]float64{"k": 1e6}},
	}
	res, _ := optimizeSrc(t, src, st, nil)
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpJoin && !n.BuildLeft {
			t.Error("join with smaller left side should build left after commute")
		}
	}
}

func TestBroadcastAnnotationEnabled(t *testing.T) {
	src := `
big = EXTRACT k:long, v:int FROM "data/big.tsv";
dim = EXTRACT k:long, s:int FROM "data/dim.tsv";
j = SELECT a.v, b.s FROM big AS a JOIN dim AS b ON a.k == b.k;
OUTPUT j TO "o";`
	st := MapStats{
		"data/big.tsv": {Rows: 1e7, NDV: map[string]float64{"k": 1e6}},
		"data/dim.tsv": {Rows: 5e3, NDV: map[string]float64{"k": 5e3}},
	}
	res, _ := optimizeSrc(t, src, st, enableKinds(rules.KindBroadcastAnnotation))
	annotated := false
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpJoin && n.BroadcastRight {
			annotated = true
		}
	}
	if !annotated {
		t.Error("broadcast annotation should fire for a small build side")
	}
	// And the physical plan uses a broadcast join.
	hasBroadcast := false
	for _, n := range res.Plan.Nodes() {
		if n.Op == PhysBroadcastJoin {
			hasBroadcast = true
		}
	}
	if !hasBroadcast {
		t.Error("annotated join should lower to a broadcast join")
	}
}

func TestMergeProjectsComposesExpressions(t *testing.T) {
	src := `
t = EXTRACT a:int, b:int FROM "data/t.tsv";
p1 = SELECT a + b AS s, a FROM t;
p2 = SELECT s + 1 AS s1 FROM p1;
OUTPUT p2 TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e5, NDV: map[string]float64{"a": 10, "b": 10}}}
	res, _ := optimizeSrc(t, src, st, nil)
	kinds := logicalKinds(res.Logical)
	if kinds[scope.OpProject] != 1 {
		t.Errorf("stacked projects should merge, got %d projects", kinds[scope.OpProject])
	}
	// The merged expression must substitute the inner definition.
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpProject {
			if !strings.Contains(n.Projs[0].E.String(), "a + b") {
				t.Errorf("merged projection should inline (a + b): %s", n.Projs[0].E)
			}
		}
	}
}

func TestSignatureDiffersAcrossConfigs(t *testing.T) {
	res1, cat := optimizeSrc(t, joinFilterScript, joinFilterStats, nil)
	res2, _ := optimizeSrc(t, joinFilterScript, joinFilterStats, disableKinds(rules.KindPushFilterBelowJoin, rules.KindSplitComplexFilter))
	if res1.Signature.Equal(res2.Signature.Bitset) {
		t.Error("different configs should usually yield different signatures")
	}
	_ = cat
}

func TestTuningRulesAffectPlan(t *testing.T) {
	// Disabling all exchange-compression tuning rules must change cost on
	// a shuffle-heavy plan where at least one compression rule matched.
	src := `
t = EXTRACT k:long, v:double, w:string FROM "data/t.tsv";
a = SELECT k, SUM(v) AS s FROM t GROUP BY k;
OUTPUT a TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e7, NDV: map[string]float64{"k": 5e6, "v": 1e5, "w": 100}}}
	base, _ := optimizeSrc(t, src, st, nil)
	noTune, _ := optimizeSrc(t, src, st, disableKinds(
		rules.KindTuneExchangeCompression, rules.KindTunePartitionCount,
		rules.KindTuneVertexPacking, rules.KindTuneStageFusion, rules.KindTuneSortBuffer))
	if base.EstCost == noTune.EstCost {
		t.Skip("no tuning rule matched this template (gate-dependent)")
	}
}

func TestExperimentalValidityFailureIsDeterministic(t *testing.T) {
	// Enabling all off-by-default rules either always fails or always
	// succeeds for a given template.
	g, err := scope.CompileScript(joinFilterScript)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	cfg := cat.DefaultConfig()
	for _, r := range cat.Rules(rules.OffByDefault) {
		cfg = cfg.WithFlip(rules.Flip{RuleID: r.ID, Enable: true})
	}
	opts := Options{Catalog: cat, Stats: joinFilterStats}
	_, err1 := Optimize(g, cfg, opts)
	_, err2 := Optimize(g, cfg, opts)
	if (err1 == nil) != (err2 == nil) {
		t.Error("experimental validity must be deterministic")
	}
}

func TestSingleFlipFailureRate(t *testing.T) {
	// The deterministic "unsupported rule combination" rejection should
	// fail roughly 1/6 of single flips, matching Table 3's failure rates.
	g, err := scope.CompileScript(joinFilterScript)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	def := cat.DefaultConfig()
	opts := Options{Catalog: cat, Stats: joinFilterStats}
	fails, total := 0, 0
	for id := 0; id < rules.NumRules; id++ {
		if cat.Rule(id).Category == rules.Required {
			continue
		}
		total++
		flip := cat.FlipFor(id)
		if _, err := Optimize(g, def.WithFlip(flip), opts); err != nil {
			fails++
		}
	}
	rate := float64(fails) / float64(total)
	if rate < 0.08 || rate > 0.30 {
		t.Errorf("single-flip failure rate = %.2f, want ~0.17 (paper: 0.14-0.18)", rate)
	}
}

func TestJoinAssociateRotatesChain(t *testing.T) {
	// (huge ⋈ mid) ⋈ tiny where mid ⋈ tiny is small: rotation helps.
	src := `
huge = EXTRACT hk:long, hv:int FROM "data/huge.tsv";
mid = EXTRACT mk:long, mv:int FROM "data/mid.tsv";
tiny = EXTRACT tk:long, tv:int FROM "data/tiny.tsv";
j1 = SELECT * FROM huge AS a JOIN mid AS b ON a.hk == b.mk;
j2 = SELECT * FROM j1 AS a JOIN tiny AS c ON a.mk == c.tk;
OUTPUT j2 TO "o";`
	st := MapStats{
		"data/huge.tsv": {Rows: 1e8, NDV: map[string]float64{"hk": 1e4}},
		"data/mid.tsv":  {Rows: 1e6, NDV: map[string]float64{"mk": 1e4}},
		"data/tiny.tsv": {Rows: 1e3, NDV: map[string]float64{"tk": 1e6}},
	}
	// Default: the rule is off; the chain stays left-deep.
	res, _ := optimizeSrc(t, src, st, nil)
	leftDeep := false
	for _, n := range res.Logical.Nodes() {
		if n.Kind == scope.OpJoin && n.Inputs[0].Kind == scope.OpJoin {
			leftDeep = true
		}
	}
	if !leftDeep {
		t.Fatal("expected a left-deep join chain under defaults")
	}
	// Enabled: the rotation fires and some join gains a join as its
	// RIGHT input.
	res2, _ := optimizeSrc(t, src, st, enableKinds(rules.KindJoinAssociate))
	rightDeep := false
	for _, n := range res2.Logical.Nodes() {
		if n.Kind == scope.OpJoin && n.Inputs[1].Kind == scope.OpJoin {
			rightDeep = true
		}
	}
	if !rightDeep {
		t.Error("join-associate should rotate the chain right-deep")
	}
	if res2.EstCost >= res.EstCost {
		t.Errorf("rotation should reduce estimated cost: %.3g vs %.3g", res2.EstCost, res.EstCost)
	}
}
