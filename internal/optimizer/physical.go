// Package optimizer implements a cascades-style rule-driven query
// optimizer over the scope logical DAG, reproducing the steering surface
// of the SCOPE optimizer described in the QO-Advisor paper: a 256-rule
// catalog whose configuration can be amended per job via hints, a rule
// signature recording which rules fired, estimated-cost output, and a
// distributed physical plan (exchanges, stages, degree of parallelism)
// consumed by the execution simulator.
package optimizer

import (
	"fmt"
	"strings"

	"qoadvisor/internal/scope"
)

// PhysOp enumerates physical operator kinds.
type PhysOp int

const (
	PhysRowScan PhysOp = iota
	PhysColumnScan
	PhysIndexSeek
	PhysFilter
	PhysProject
	PhysHashJoin
	PhysMergeJoin
	PhysBroadcastJoin
	PhysNestedLoopJoin
	PhysHashAgg
	PhysStreamAgg
	PhysSort
	PhysTopNHeap
	PhysTopNSort
	PhysConcatUnion
	PhysSortedUnion
	PhysExchange
	PhysReduce
	PhysProcess
	PhysOutput
)

var physOpNames = [...]string{
	"RowScan", "ColumnScan", "IndexSeek", "Filter", "Project",
	"HashJoin", "MergeJoin", "BroadcastJoin", "NestedLoopJoin",
	"HashAgg", "StreamAgg", "Sort", "TopNHeap", "TopNSort",
	"ConcatUnion", "SortedUnion", "Exchange", "Reduce", "Process", "Output",
}

func (op PhysOp) String() string {
	if int(op) < len(physOpNames) {
		return physOpNames[op]
	}
	return fmt.Sprintf("phys(%d)", int(op))
}

// ExchangeKind describes how an Exchange redistributes rows.
type ExchangeKind int

const (
	ExchangeNone ExchangeKind = iota
	ExchangeHash
	ExchangeRange
	ExchangeBroadcast
	ExchangeGather // merge all partitions into one
	ExchangeRoundRobin
)

var exchangeKindNames = [...]string{"none", "hash", "range", "broadcast", "gather", "roundrobin"}

func (k ExchangeKind) String() string {
	if int(k) < len(exchangeKindNames) {
		return exchangeKindNames[k]
	}
	return fmt.Sprintf("exchange(%d)", int(k))
}

// PhysNode is a physical plan operator. The physical plan mirrors the
// logical DAG with implementation choices made and exchange operators
// inserted at repartitioning boundaries.
type PhysNode struct {
	ID      int
	Op      PhysOp
	Inputs  []*PhysNode
	Logical *scope.Node // originating logical node; nil for exchanges

	// Exchange-specific fields.
	Exchange ExchangeKind
	Compress bool // tuning: compress exchange payloads
	Fused    bool // tuning: exchange removed by stage fusion (pass-through)

	// PartScheme describes the node's output partitioning, e.g.
	// "rr", "hash:uid", "range:ts", "bcast", "single". Exchanges are
	// skipped when the input already carries the required scheme.
	PartScheme string

	// BaseWidth is the unpruned input row width for scans, used to model
	// row-store reads that cannot skip columns.
	BaseWidth int64

	// GateHint pins an exchange's tuning-rule gate to the operator site
	// that created it, so tuning rules match the same exchanges across
	// different rule configurations.
	GateHint uint64

	// Cardinality and sizing (estimated values; the execution simulator
	// recomputes true values through the same engine).
	EstRows  float64
	RowWidth int64

	// Partitions is the degree of parallelism of the operator's stage.
	Partitions int

	// StageID groups pipelined operators into stages; exchanges end
	// stages. Assigned by the stage-assignment phase.
	StageID int

	// PackFactor is a tuning multiplier for rows-per-vertex packing.
	PackFactor float64
}

// IsExchange reports whether the node is an exchange operator.
func (n *PhysNode) IsExchange() bool { return n.Op == PhysExchange }

// Label renders a one-line description for plan dumps.
func (n *PhysNode) Label() string {
	if n.IsExchange() {
		return fmt.Sprintf("Exchange[%s x%d]", n.Exchange, n.Partitions)
	}
	base := n.Op.String()
	if n.Logical != nil {
		base += "{" + n.Logical.Label() + "}"
	}
	return fmt.Sprintf("%s x%d rows=%.0f", base, n.Partitions, n.EstRows)
}

// Stage is a set of pipelined physical operators executed with a common
// degree of parallelism. Stage boundaries are exchanges and outputs.
type Stage struct {
	ID         int
	Nodes      []*PhysNode
	InputIDs   []int // upstream stage IDs
	Partitions int
}

// Plan is a complete physical plan.
type Plan struct {
	Roots  []*PhysNode
	Stages []*Stage

	// EstCost is the optimizer's estimated cost of the whole plan, the
	// quantity QO-Advisor's contextual bandit learns over.
	EstCost float64

	// EstVertices is the estimated total vertex count (sum over stages of
	// their parallelism).
	EstVertices int

	nextID int
}

// NewNode allocates a physical node attached to this plan.
func (p *Plan) NewNode(op PhysOp, logical *scope.Node, inputs ...*PhysNode) *PhysNode {
	n := &PhysNode{ID: p.nextID, Op: op, Logical: logical, Inputs: inputs, PackFactor: 1}
	p.nextID++
	return n
}

// Nodes returns all physical nodes in deterministic topological order.
func (p *Plan) Nodes() []*PhysNode {
	var order []*PhysNode
	seen := make(map[*PhysNode]bool)
	var visit func(n *PhysNode)
	visit = func(n *PhysNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		order = append(order, n)
	}
	for _, r := range p.Roots {
		visit(r)
	}
	return order
}

// String renders the plan as indented trees, one per root.
func (p *Plan) String() string {
	var sb strings.Builder
	printed := make(map[*PhysNode]bool)
	var dump func(n *PhysNode, depth int)
	dump = func(n *PhysNode, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if printed[n] {
			fmt.Fprintf(&sb, "#%d (shared)\n", n.ID)
			return
		}
		printed[n] = true
		fmt.Fprintf(&sb, "#%d s%d %s\n", n.ID, n.StageID, n.Label())
		for _, in := range n.Inputs {
			dump(in, depth+1)
		}
	}
	for i, r := range p.Roots {
		fmt.Fprintf(&sb, "root %d (cost %.3g):\n", i, p.EstCost)
		dump(r, 1)
	}
	return sb.String()
}
