package optimizer

import (
	"testing"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

func physOps(p *Plan) map[PhysOp]int {
	m := make(map[PhysOp]int)
	for _, n := range p.Nodes() {
		m[n.Op]++
	}
	return m
}

func TestJoinLowersToHashJoinByDefault(t *testing.T) {
	src := `
l = EXTRACT k:long, v:int FROM "data/l.tsv";
r = EXTRACT k:long, w:int FROM "data/r.tsv";
j = SELECT a.v, b.w FROM l AS a JOIN r AS b ON a.k == b.k;
OUTPUT j TO "o";`
	st := MapStats{
		"data/l.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 1e6}},
		"data/r.tsv": {Rows: 4e6, NDV: map[string]float64{"k": 1e6}},
	}
	// Disable the broadcast-bias tuning rules so the choice is purely
	// cost-based.
	res, _ := optimizeSrc(t, src, st, disableKinds(rules.KindTuneBroadcastThreshold))
	ops := physOps(res.Plan)
	joins := ops[PhysHashJoin] + ops[PhysMergeJoin] + ops[PhysBroadcastJoin] + ops[PhysNestedLoopJoin]
	if joins != 1 {
		t.Fatalf("physical joins = %d, want 1", joins)
	}
	// Two similar-sized inputs: broadcast is too expensive, a
	// co-partitioned join should win.
	if ops[PhysBroadcastJoin] != 0 {
		t.Error("similar-sized join should not broadcast")
	}
}

func TestDisablingAllJoinImplsFailsCompilation(t *testing.T) {
	src := `
l = EXTRACT k:long, v:int FROM "data/l.tsv";
r = EXTRACT k:long, w:int FROM "data/r.tsv";
j = SELECT a.v, b.w FROM l AS a JOIN r AS b ON a.k == b.k;
OUTPUT j TO "o";`
	g, err := scope.CompileScript(src)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	cfg := cat.DefaultConfig()
	for _, r := range cat.All() {
		switch r.Kind {
		case rules.KindImplHashJoin, rules.KindImplMergeJoin,
			rules.KindImplBroadcastJoin, rules.KindImplNestedLoopJoin:
			cfg = cfg.WithFlip(rules.Flip{RuleID: r.ID, Enable: false})
		}
	}
	_, err = Optimize(g, cfg, Options{Catalog: cat, Stats: MapStats{}})
	if err == nil {
		t.Fatal("expected compile failure without any join implementation")
	}
	if !IsCompileFailure(err) {
		t.Fatalf("error type %T", err)
	}
}

func TestSortRequiresRangePartitionerAndExternalSort(t *testing.T) {
	src := `
t = EXTRACT a:int, b:int FROM "data/t.tsv";
s = SELECT a, b FROM t ORDER BY a;
OUTPUT s TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 1e4}}}

	// Default: a range exchange feeds the sort.
	res, _ := optimizeSrc(t, src, st, nil)
	hasRange := false
	for _, n := range res.Plan.Nodes() {
		if n.IsExchange() && n.Exchange == ExchangeRange {
			hasRange = true
		}
	}
	if !hasRange {
		t.Error("global sort should use a range exchange")
	}

	// No sort implementation at all: compile failure.
	g, err := scope.CompileScript(src)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	cfg := disableKinds(rules.KindImplExternalSort)(cat, cat.DefaultConfig())
	if _, err := Optimize(g, cfg, Options{Catalog: cat, Stats: st}); err == nil {
		t.Error("expected failure with the sort implementation disabled")
	}
}

func TestHashExchangeFallsBackToRangePartition(t *testing.T) {
	src := `
t = EXTRACT k:int, v:double FROM "data/t.tsv";
a = SELECT k, SUM(v) AS s FROM t GROUP BY k;
OUTPUT a TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 1e5}}}
	res, _ := optimizeSrc(t, src, st, disableKinds(rules.KindImplHashPartition))
	hasRange := false
	for _, n := range res.Plan.Nodes() {
		if n.IsExchange() && n.Exchange == ExchangeRange {
			hasRange = true
		}
		if n.IsExchange() && n.Exchange == ExchangeHash {
			t.Error("hash exchange present with hash partitioner disabled")
		}
	}
	if !hasRange {
		t.Error("aggregation should fall back to range partitioning")
	}
}

func TestGlobalAggGathersToSinglePartition(t *testing.T) {
	src := `
t = EXTRACT v:int FROM "data/t.tsv";
a = SELECT COUNT(*) AS c FROM t;
OUTPUT a TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e7, NDV: map[string]float64{"v": 100}}}
	res, _ := optimizeSrc(t, src, st, nil)
	for _, n := range res.Plan.Nodes() {
		if (n.Op == PhysHashAgg || n.Op == PhysStreamAgg) && n.Logical != nil && !n.Logical.Partial {
			if n.Partitions != 1 {
				t.Errorf("global aggregation should run single-partition, got %d", n.Partitions)
			}
		}
	}
}

func TestExchangeReuseAcrossCoPartitionedOps(t *testing.T) {
	// Join on k followed by aggregation on k: the agg should reuse the
	// join's partitioning instead of reshuffling.
	src := `
l = EXTRACT k:long, v:int FROM "data/l.tsv";
r = EXTRACT k:long, w:int FROM "data/r.tsv";
j = SELECT a.k, a.v FROM l AS a JOIN r AS b ON a.k == b.k;
g = SELECT k, SUM(v) AS s FROM j GROUP BY k;
OUTPUT g TO "o";`
	st := MapStats{
		"data/l.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 1e6, "v": 100}},
		"data/r.tsv": {Rows: 5e6, NDV: map[string]float64{"k": 1e6, "w": 100}},
	}
	res, _ := optimizeSrc(t, src, st, disableKinds(rules.KindLocalGlobalAgg, rules.KindTuneStageFusion))
	// Count key exchanges: the join needs two (one per side); the agg on
	// the same key should add none.
	keyExchanges := 0
	for _, n := range res.Plan.Nodes() {
		if n.IsExchange() && (n.Exchange == ExchangeHash || n.Exchange == ExchangeRange) {
			keyExchanges++
		}
	}
	if keyExchanges > 2 {
		t.Errorf("expected exchange reuse for co-partitioned agg, got %d key exchanges", keyExchanges)
	}
}

func TestStageAssignmentMatchesExchanges(t *testing.T) {
	res, _ := optimizeSrc(t, joinFilterScript, joinFilterStats, nil)
	// Every non-fused exchange must sit in a different stage from its
	// input.
	for _, n := range res.Plan.Nodes() {
		if n.IsExchange() && !n.Fused {
			for _, in := range n.Inputs {
				if in.StageID == n.StageID {
					t.Errorf("exchange #%d shares stage %d with its input", n.ID, n.StageID)
				}
			}
		}
		if !n.IsExchange() {
			for _, in := range n.Inputs {
				if !in.IsExchange() && in.StageID != n.StageID {
					t.Errorf("pipelined op #%d (%v) in stage %d, input #%d in stage %d",
						n.ID, n.Op, n.StageID, in.ID, in.StageID)
				}
			}
		}
	}
}

func TestEstVerticesEqualsStagePartitionSum(t *testing.T) {
	res, _ := optimizeSrc(t, joinFilterScript, joinFilterStats, nil)
	sum := 0
	for _, s := range res.Plan.Stages {
		sum += s.Partitions
	}
	if res.Plan.EstVertices != sum {
		t.Errorf("EstVertices %d != stage partition sum %d", res.Plan.EstVertices, sum)
	}
}

func TestTokensBoundParallelism(t *testing.T) {
	src := `
t = EXTRACT a:long, b:double FROM "data/t.tsv";
x = SELECT a, b FROM t WHERE b > 0.5;
OUTPUT x TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e9, NDV: map[string]float64{"a": 1e6}}}
	g, err := scope.CompileScript(src)
	if err != nil {
		t.Fatal(err)
	}
	cat := rules.NewCatalog()
	res, err := Optimize(g, cat.DefaultConfig(), Options{Catalog: cat, Stats: st, Tokens: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Plan.Nodes() {
		if n.Partitions > 10 {
			t.Errorf("node #%d parallelism %d exceeds token budget 10", n.ID, n.Partitions)
		}
	}
}

func TestIndexSeekForSelectiveEquality(t *testing.T) {
	src := `
t = EXTRACT a:long, b:string FROM "data/t.tsv";
x = SELECT a FROM t WHERE a == 42;
OUTPUT x TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e8, NDV: map[string]float64{"a": 1e7, "b": 100}}}
	res, _ := optimizeSrc(t, src, st, nil)
	ops := physOps(res.Plan)
	if ops[PhysIndexSeek] != 1 {
		t.Errorf("highly selective equality should use an index seek, ops=%v", ops)
	}
	// With index seeks disabled, a scan takes over.
	res2, _ := optimizeSrc(t, src, st, disableKinds(rules.KindImplIndexSeek))
	ops2 := physOps(res2.Plan)
	if ops2[PhysIndexSeek] != 0 {
		t.Error("index seek used while disabled")
	}
	if ops2[PhysRowScan]+ops2[PhysColumnScan] != 1 {
		t.Errorf("expected a scan fallback, ops=%v", ops2)
	}
}

func TestTopLowersToLocalAndFinalPhases(t *testing.T) {
	src := `
t = EXTRACT a:int FROM "data/t.tsv";
x = SELECT * FROM t ORDER BY a DESC TOP 5;
OUTPUT x TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e7, NDV: map[string]float64{"a": 1e5}}}
	res, _ := optimizeSrc(t, src, st, nil)
	ops := physOps(res.Plan)
	tops := ops[PhysTopNHeap] + ops[PhysTopNSort]
	if tops < 2 {
		t.Errorf("top-n should lower to local+final phases, got %d top operators", tops)
	}
}

func TestUnionLowersToConcat(t *testing.T) {
	src := `
a = EXTRACT x:int FROM "data/a.tsv";
b = EXTRACT x:int FROM "data/b.tsv";
u = a UNION ALL b;
OUTPUT u TO "o";`
	res, _ := optimizeSrc(t, src, MapStats{}, nil)
	ops := physOps(res.Plan)
	if ops[PhysConcatUnion] != 1 {
		t.Errorf("union should lower to concat by default, ops=%v", ops)
	}
	res2, _ := optimizeSrc(t, src, MapStats{}, disableKinds(rules.KindImplConcatUnion))
	ops2 := physOps(res2.Plan)
	if ops2[PhysSortedUnion] != 1 {
		t.Errorf("sorted union should take over, ops=%v", ops2)
	}
}

func TestReduceShufflesByPartitionColumns(t *testing.T) {
	src := `
t = EXTRACT k:long, payload:string FROM "data/t.tsv";
r = REDUCE t ON k USING Sessionize PRODUCE k:long, cnt:long;
OUTPUT r TO "o";`
	st := MapStats{"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"k": 1e5}}}
	res, _ := optimizeSrc(t, src, st, nil)
	ops := physOps(res.Plan)
	if ops[PhysReduce] != 1 {
		t.Fatalf("reduce ops = %d", ops[PhysReduce])
	}
	// The reducer's input must be key-partitioned.
	for _, n := range res.Plan.Nodes() {
		if n.Op == PhysReduce {
			in := n.Inputs[0]
			if !in.IsExchange() && in.PartScheme != "hash:k" && in.PartScheme != "range:k" {
				t.Errorf("reduce input not key-partitioned: %s", in.PartScheme)
			}
		}
	}
}

func TestRecardinalizeCoversAllNodes(t *testing.T) {
	res, _ := optimizeSrc(t, joinFilterScript, joinFilterStats, nil)
	env := &EstimationEnv{Stats: joinFilterStats}
	rows := res.Plan.Recardinalize(env, joinFilterStats)
	for _, n := range res.Plan.Nodes() {
		if _, ok := rows[n]; !ok {
			t.Errorf("node #%d missing from recardinalization", n.ID)
		}
		if rows[n] < 0 {
			t.Errorf("negative rows for node #%d", n.ID)
		}
	}
}

func TestNodeCostNonNegative(t *testing.T) {
	res, _ := optimizeSrc(t, joinFilterScript, joinFilterStats, nil)
	for _, n := range res.Plan.Nodes() {
		var inRows []float64
		for _, in := range n.Inputs {
			inRows = append(inRows, in.EstRows)
		}
		if c := nodeCost(n, inRows, n.EstRows); c < 0 {
			t.Errorf("negative cost for %v: %v", n.Op, c)
		}
	}
}
