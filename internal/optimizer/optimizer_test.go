package optimizer

import (
	"strings"
	"testing"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

const testScript = `
logs = EXTRACT uid:long, page:string, dur:int, score:double FROM "data/logs_20211103.tsv";
users = EXTRACT uid:long, region:string, age:int FROM "data/users.tsv";
clicks = SELECT uid, page, dur FROM logs WHERE dur > 100 AND score >= 0.5;
joined = SELECT l.uid, l.dur, u.region FROM clicks AS l JOIN users AS u ON l.uid == u.uid;
agg = SELECT region, COUNT(*) AS cnt, SUM(dur) AS total FROM joined GROUP BY region HAVING COUNT(*) > 10 ORDER BY cnt DESC TOP 100;
OUTPUT agg TO "out/agg.tsv";
`

func testStats() MapStats {
	return MapStats{
		"data/logs_20211103.tsv": {
			Rows: 5e6,
			NDV:  map[string]float64{"uid": 1e5, "page": 5000, "dur": 2000, "score": 100},
		},
		"data/users.tsv": {
			Rows: 1e5,
			NDV:  map[string]float64{"uid": 1e5, "region": 50, "age": 80},
		},
	}
}

func compileTestGraph(t *testing.T, src string) *scope.Graph {
	t.Helper()
	g, err := scope.CompileScript(src)
	if err != nil {
		t.Fatalf("CompileScript: %v", err)
	}
	return g
}

func optimizeDefault(t *testing.T, src string) (*Result, *rules.Catalog) {
	t.Helper()
	g := compileTestGraph(t, src)
	cat := rules.NewCatalog()
	res, err := Optimize(g, cat.DefaultConfig(), Options{Catalog: cat, Stats: testStats()})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return res, cat
}

func TestOptimizeDefaultConfigSucceeds(t *testing.T) {
	res, _ := optimizeDefault(t, testScript)
	if res.Plan == nil || len(res.Plan.Roots) != 1 {
		t.Fatal("missing physical plan")
	}
	if res.EstCost <= 0 {
		t.Errorf("EstCost = %v, want > 0", res.EstCost)
	}
	if res.Plan.EstVertices <= 0 {
		t.Errorf("EstVertices = %d, want > 0", res.Plan.EstVertices)
	}
	if len(res.Plan.Stages) < 2 {
		t.Errorf("stages = %d, want >= 2 (exchanges should split stages)", len(res.Plan.Stages))
	}
}

func TestOptimizeIsDeterministic(t *testing.T) {
	r1, _ := optimizeDefault(t, testScript)
	r2, _ := optimizeDefault(t, testScript)
	if r1.EstCost != r2.EstCost {
		t.Errorf("cost not deterministic: %v vs %v", r1.EstCost, r2.EstCost)
	}
	if !r1.Signature.Equal(r2.Signature.Bitset) {
		t.Error("signature not deterministic")
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	g := compileTestGraph(t, testScript)
	before := g.String()
	cat := rules.NewCatalog()
	if _, err := Optimize(g, cat.DefaultConfig(), Options{Catalog: cat, Stats: testStats()}); err != nil {
		t.Fatal(err)
	}
	if g.String() != before {
		t.Error("Optimize mutated the input graph")
	}
}

func TestSignatureContainsRequiredAndUsedRules(t *testing.T) {
	res, cat := optimizeDefault(t, testScript)
	for _, r := range cat.Rules(rules.Required) {
		if !res.Signature.Fired(r.ID) {
			t.Errorf("required rule %s not in signature", r.Name)
		}
	}
	// At least one implementation rule must have fired (joins, aggs...).
	firedImpl := 0
	for _, r := range cat.Rules(rules.Implementation) {
		if res.Signature.Fired(r.ID) {
			firedImpl++
		}
	}
	if firedImpl == 0 {
		t.Error("no implementation rules in signature")
	}
	// No off-by-default rule can fire under the default config.
	for _, r := range cat.Rules(rules.OffByDefault) {
		if res.Signature.Fired(r.ID) {
			t.Errorf("off-by-default rule %s fired under default config", r.Name)
		}
	}
}

func TestDisabledRequiredRuleFailsCompilation(t *testing.T) {
	g := compileTestGraph(t, testScript)
	cat := rules.NewCatalog()
	req := cat.Rules(rules.Required)[0]
	cfg := cat.DefaultConfig().WithFlip(rules.Flip{RuleID: req.ID, Enable: false})
	_, err := Optimize(g, cfg, Options{Catalog: cat, Stats: testStats()})
	if err == nil {
		t.Fatal("expected compile failure")
	}
	if !IsCompileFailure(err) {
		t.Errorf("error type %T, want CompileFailure", err)
	}
}

func TestSingleFlipChangesPlanForSignatureRules(t *testing.T) {
	res, cat := optimizeDefault(t, testScript)
	g := compileTestGraph(t, testScript)
	def := cat.DefaultConfig()
	changed := 0
	tried := 0
	for _, id := range res.Signature.Bits() {
		r := cat.Rule(id)
		if r.Category == rules.Required {
			continue
		}
		tried++
		cfg := def.WithFlip(rules.Flip{RuleID: id, Enable: false})
		res2, err := Optimize(g, cfg, Options{Catalog: cat, Stats: testStats()})
		if err != nil {
			changed++ // a compile failure is also a plan change
			continue
		}
		if res2.EstCost != res.EstCost || !res2.Signature.Equal(res.Signature.Bitset) {
			changed++
		}
	}
	if tried == 0 {
		t.Fatal("no non-required rules in signature")
	}
	if changed == 0 {
		t.Errorf("disabling fired rules never changed the plan (%d tried)", tried)
	}
}

func TestFilterPushdownReducesCost(t *testing.T) {
	src := `
big = EXTRACT k:long, v:int, w:string FROM "data/big.tsv";
dim = EXTRACT k:long, name:string FROM "data/dim.tsv";
j = SELECT b.v, d.name FROM big AS b JOIN dim AS d ON b.k == d.k WHERE v > 5;
OUTPUT j TO "out/j.tsv";`
	stats := MapStats{
		"data/big.tsv": {Rows: 1e7, NDV: map[string]float64{"k": 1e6, "v": 100}},
		"data/dim.tsv": {Rows: 1e4, NDV: map[string]float64{"k": 1e4}},
	}
	g := compileTestGraph(t, src)
	cat := rules.NewCatalog()
	def := cat.DefaultConfig()

	withPush, err := Optimize(g, def, Options{Catalog: cat, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	// Disable every filter-pushdown sibling rule.
	cfg := def
	for _, r := range cat.All() {
		switch r.Kind {
		case rules.KindPushFilterBelowJoin, rules.KindPushFilterIntoScan,
			rules.KindPushFilterBelowProject, rules.KindSplitComplexFilter:
			cfg = cfg.WithFlip(rules.Flip{RuleID: r.ID, Enable: false})
		}
	}
	withoutPush, err := Optimize(g, cfg, Options{Catalog: cat, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if withPush.EstCost >= withoutPush.EstCost {
		t.Errorf("pushdown should reduce cost: with=%.4g without=%.4g", withPush.EstCost, withoutPush.EstCost)
	}
}

func TestPhysicalPlanHasExchanges(t *testing.T) {
	res, _ := optimizeDefault(t, testScript)
	exchanges := 0
	for _, n := range res.Plan.Nodes() {
		if n.IsExchange() {
			exchanges++
		}
	}
	if exchanges == 0 {
		t.Error("expected exchange operators in a distributed plan")
	}
}

func TestStagePartitionsArePositive(t *testing.T) {
	res, _ := optimizeDefault(t, testScript)
	for _, s := range res.Plan.Stages {
		if s.Partitions < 1 {
			t.Errorf("stage %d has partitions %d", s.ID, s.Partitions)
		}
		if len(s.Nodes) == 0 {
			t.Errorf("stage %d has no nodes", s.ID)
		}
	}
}

// trueEnv is a toy ground-truth environment for Recardinalize tests.
type trueEnv struct {
	rows map[string]float64
	sels map[string]float64
}

func (e *trueEnv) BaseRows(path string) float64 {
	if r, ok := e.rows[path]; ok {
		return r
	}
	return 1e6
}

func (e *trueEnv) Selectivity(site string, heuristic float64) float64 {
	if s, ok := e.sels[site]; ok {
		return s
	}
	return heuristic
}

func TestRecardinalizeUsesTrueEnvironment(t *testing.T) {
	res, _ := optimizeDefault(t, testScript)
	env := &trueEnv{
		rows: map[string]float64{"data/logs_20211103.tsv": 2e7, "data/users.tsv": 1e5},
		sels: map[string]float64{},
	}
	trueRows := res.Plan.Recardinalize(env, testStats())
	estTotal, trueTotal := 0.0, 0.0
	for _, n := range res.Plan.Nodes() {
		estTotal += n.EstRows
		trueTotal += trueRows[n]
	}
	if trueTotal <= estTotal {
		t.Errorf("true rows (%.3g) should exceed estimates (%.3g) with 4x base rows", trueTotal, estTotal)
	}
}

func TestOptimizeSharedSubplan(t *testing.T) {
	src := `
t = EXTRACT a:long, b:int FROM "data/t.tsv";
x = SELECT a, b FROM t WHERE b > 10;
y = SELECT a FROM x WHERE b > 20;
z = SELECT a, COUNT(*) AS c FROM x GROUP BY a;
OUTPUT y TO "out/y.tsv";
OUTPUT z TO "out/z.tsv";`
	g := compileTestGraph(t, src)
	cat := rules.NewCatalog()
	res, err := Optimize(g, cat.DefaultConfig(), Options{Catalog: cat, Stats: MapStats{
		"data/t.tsv": {Rows: 1e6, NDV: map[string]float64{"a": 1e5, "b": 100}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(res.Plan.Roots))
	}
}

func TestOptimizeUnionAndSort(t *testing.T) {
	src := `
a = EXTRACT k:long, v:int FROM "data/a.tsv";
b = EXTRACT k:long, v:int FROM "data/b.tsv";
u = a UNION ALL b;
s = SELECT k, v FROM u WHERE v > 3 ORDER BY v DESC;
OUTPUT s TO "out/s.tsv";`
	g := compileTestGraph(t, src)
	cat := rules.NewCatalog()
	res, err := Optimize(g, cat.DefaultConfig(), Options{Catalog: cat, Stats: MapStats{
		"data/a.tsv": {Rows: 1e6, NDV: map[string]float64{"k": 1e5, "v": 100}},
		"data/b.tsv": {Rows: 2e6, NDV: map[string]float64{"k": 2e5, "v": 100}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	hasSort := false
	for _, n := range res.Plan.Nodes() {
		if n.Op == PhysSort {
			hasSort = true
		}
	}
	if !hasSort {
		t.Error("ORDER BY should lower to a physical sort")
	}
}

func TestOffByDefaultRulesCanFire(t *testing.T) {
	// Enabling all off-by-default rules should fire at least one of them
	// on a plan with aggregation above a join.
	g := compileTestGraph(t, testScript)
	cat := rules.NewCatalog()
	cfg := cat.DefaultConfig()
	for _, r := range cat.Rules(rules.OffByDefault) {
		cfg = cfg.WithFlip(rules.Flip{RuleID: r.ID, Enable: true})
	}
	res, err := Optimize(g, cfg, Options{Catalog: cat, Stats: testStats()})
	if err != nil {
		// Experimental rules may legitimately fail validation; that
		// still proves they fired.
		if !IsCompileFailure(err) {
			t.Fatalf("unexpected error type: %v", err)
		}
		return
	}
	fired := 0
	for _, r := range cat.Rules(rules.OffByDefault) {
		if res.Signature.Fired(r.ID) {
			fired++
		}
	}
	if fired == 0 {
		t.Error("no off-by-default rule fired even with all enabled")
	}
}

func TestCompileFailureError(t *testing.T) {
	err := &CompileFailure{Reason: "boom"}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("error = %q", err.Error())
	}
	if IsCompileFailure(nil) {
		t.Error("nil is not a compile failure")
	}
}

func TestPlanStringRenders(t *testing.T) {
	res, _ := optimizeDefault(t, testScript)
	s := res.Plan.String()
	if !strings.Contains(s, "root 0") {
		t.Errorf("plan dump missing root:\n%s", s)
	}
	if !strings.Contains(s, "Exchange") {
		t.Errorf("plan dump missing exchanges:\n%s", s)
	}
}

func TestHasEquiCond(t *testing.T) {
	eq := &scope.BinaryExpr{Op: "==", Left: &scope.ColRef{Name: "a"}, Right: &scope.ColRef{Name: "b"}}
	if !HasEquiCond(eq) {
		t.Error("simple equality should be equi")
	}
	lit := &scope.BinaryExpr{Op: "==", Left: &scope.ColRef{Name: "a"}, Right: &scope.IntLit{Value: 1}}
	if HasEquiCond(lit) {
		t.Error("column-literal equality is not an equi-join cond")
	}
	and := &scope.BinaryExpr{Op: "AND", Left: lit, Right: eq}
	if !HasEquiCond(and) {
		t.Error("conjunction containing equality should be equi")
	}
}

func TestEstimationEnvDefaults(t *testing.T) {
	env := &EstimationEnv{Stats: MapStats{}}
	if got := env.BaseRows("missing"); got != 1e6 {
		t.Errorf("default rows = %v", got)
	}
	env2 := &EstimationEnv{Stats: MapStats{}, DefaultRows: 42}
	if got := env2.BaseRows("missing"); got != 42 {
		t.Errorf("default rows = %v", got)
	}
	if got := env.Selectivity("any", 0.25); got != 0.25 {
		t.Errorf("estimation env must return the heuristic, got %v", got)
	}
}
