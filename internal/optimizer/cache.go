package optimizer

import (
	"qoadvisor/internal/cache"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

// DefaultCompileCacheSize bounds a CompileCache built with size 0. One
// entry exists per (job graph, rule configuration); span computation and
// single-flip recompilation visit tens of configurations per template, so
// this covers thousands of templates in flight.
const DefaultCompileCacheSize = 16384

// CompileCache memoizes the logical phase of Optimize — the rewrite
// fixpoint plus the experimental-validity check — keyed by the identity
// of the input graph and the exact rule configuration. The daily pipeline
// recompiles the same job graph under many configurations (span fix
// point, per-flip recompilation, flighting's baseline arm, the next-day
// validation instance), and each of those repeats the identical rewrite
// work; the cache makes every repeat reuse one immutable rewritten DAG
// and re-run only physical lowering, which is the part that can differ
// per call (tokens) and produces the per-call mutable Plan.
//
// Safety contract: the cache key does not include statistics, so callers
// must pass the same StatsProvider contents for the same graph pointer.
// Job instances satisfy this by construction — a shared graph implies a
// shared (template, date) and hence identical generated stats. Cached
// rewritten graphs are shared across goroutines; nothing downstream of
// the rewrite mutates logical nodes (verified under -race). Concurrent
// callers for the same key share one rewrite; eviction is FIFO past the
// cap and only costs a recompute.
type CompileCache struct {
	f *cache.FIFO[logicalKey, logicalResult]
}

type logicalKey struct {
	graph *scope.Graph
	cfg   rules.Config
}

type logicalResult struct {
	work *scope.Graph
	sig  rules.Signature
}

// CompileCacheStats is a point-in-time snapshot of cache effectiveness.
type CompileCacheStats = cache.Stats

// NewCompileCache builds a cache holding at most max logical-phase
// results (0 = DefaultCompileCacheSize).
func NewCompileCache(max int) *CompileCache {
	if max <= 0 {
		max = DefaultCompileCacheSize
	}
	return &CompileCache{f: cache.NewFIFO[logicalKey, logicalResult](max)}
}

// logical returns the (possibly cached) logical phase result for (g, cfg).
func (c *CompileCache) logical(g *scope.Graph, cfg rules.Config, cat *rules.Catalog, stats StatsProvider) (*scope.Graph, rules.Signature, error) {
	res, err := c.f.Do(logicalKey{graph: g, cfg: cfg}, func() (logicalResult, error) {
		work, sig, err := rewriteLogical(g, cfg, cat, stats)
		return logicalResult{work: work, sig: sig}, err
	})
	return res.work, res.sig, err
}

// Stats snapshots the hit/miss counters and current occupancy.
func (c *CompileCache) Stats() CompileCacheStats { return c.f.Stats() }
