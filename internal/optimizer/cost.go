package optimizer

import (
	"math"

	"qoadvisor/internal/scope"
)

// TableStats holds optimizer-visible statistics for a base table. The
// workload generator produces these with realistic estimation error
// relative to the true data, which is what makes estimated costs diverge
// from real performance (§5.2 of the paper).
type TableStats struct {
	Rows float64
	// NDV maps column name to its estimated distinct-value count.
	NDV map[string]float64
}

// StatsProvider supplies estimated base-table statistics at compile time.
type StatsProvider interface {
	TableStats(path string) (TableStats, bool)
}

// MapStats is a StatsProvider backed by a map, used by tests and the
// workload generator.
type MapStats map[string]TableStats

// TableStats implements StatsProvider.
func (m MapStats) TableStats(path string) (TableStats, bool) {
	ts, ok := m[path]
	return ts, ok
}

// Environment abstracts where cardinality knowledge comes from. The
// optimizer uses an estimation environment built from StatsProvider
// heuristics; the execution simulator uses a ground-truth environment
// that overrides per-site selectivities with the workload's true values.
type Environment interface {
	// BaseRows returns the row count of a base table.
	BaseRows(path string) float64
	// Selectivity returns the effective selectivity (or fraction) for the
	// operator site identified by siteKey. heuristic is the optimizer's
	// estimate; a ground-truth environment replaces it with the true value
	// when the site is known.
	Selectivity(siteKey string, heuristic float64) float64
}

// EstimationEnv is the optimizer's own environment: base rows from the
// stats provider, selectivities straight from the heuristics.
type EstimationEnv struct {
	Stats StatsProvider
	// DefaultRows is used for tables missing from the provider.
	DefaultRows float64
}

// BaseRows implements Environment.
func (e *EstimationEnv) BaseRows(path string) float64 {
	if ts, ok := e.Stats.TableStats(path); ok && ts.Rows > 0 {
		return ts.Rows
	}
	if e.DefaultRows > 0 {
		return e.DefaultRows
	}
	return 1e6
}

// Selectivity implements Environment: the heuristic is the estimate.
func (e *EstimationEnv) Selectivity(_ string, heuristic float64) float64 {
	return heuristic
}

// ndvOf returns the estimated distinct-value count of a column, given its
// base-table source identity, capped by the current row estimate.
func ndvOf(stats StatsProvider, col scope.Column, rows float64) float64 {
	ndv := rows / 10 // computed columns: assume mild redundancy
	if col.Source != "" && stats != nil {
		path, name := splitSource(col.Source)
		if ts, ok := stats.TableStats(path); ok {
			if v, ok := ts.NDV[name]; ok && v > 0 {
				ndv = v
			}
		}
	}
	return clampCard(math.Min(ndv, rows))
}

func splitSource(source string) (path, col string) {
	for i := len(source) - 1; i >= 0; i-- {
		if source[i] == ':' {
			return source[:i], source[i+1:]
		}
	}
	return source, ""
}

func clampCard(rows float64) float64 {
	if rows < 1 {
		return 1
	}
	return rows
}

// Selectivity heuristics, in the spirit of System R defaults.
const (
	selEquality   = 0.0 // computed from NDV
	selRange      = 0.30
	selInequality = 0.90
	selDefault    = 0.10
	semiJoinSel   = 0.50
	reduceFrac    = 0.40
	processFrac   = 1.00
)

// predSelectivity estimates the selectivity of a predicate over the given
// input schema using textbook heuristics.
func predSelectivity(pred scope.Expr, cols []scope.Column, rows float64, stats StatsProvider) float64 {
	switch e := pred.(type) {
	case *scope.BinaryExpr:
		switch e.Op {
		case "AND":
			return predSelectivity(e.Left, cols, rows, stats) * predSelectivity(e.Right, cols, rows, stats)
		case "OR":
			s1 := predSelectivity(e.Left, cols, rows, stats)
			s2 := predSelectivity(e.Right, cols, rows, stats)
			return s1 + s2 - s1*s2
		case "==":
			if cr := asColRef(e.Left, e.Right); cr != nil {
				col, ok := findCol(cols, cr.Name)
				if ok {
					return 1 / ndvOf(stats, col, rows)
				}
			}
			return selDefault
		case "!=":
			return selInequality
		case "<", "<=", ">", ">=":
			return selRange
		default:
			return selDefault
		}
	case *scope.UnaryExpr:
		if e.Op == "NOT" {
			return clampSel(1 - predSelectivity(e.Expr, cols, rows, stats))
		}
		return selDefault
	case *scope.BoolLit:
		if e.Value {
			return 1
		}
		return 0.001
	default:
		return selDefault
	}
}

func clampSel(s float64) float64 {
	if s < 0.0001 {
		return 0.0001
	}
	if s > 1 {
		return 1
	}
	return s
}

// asColRef returns the column reference when exactly one side of a
// comparison is a column and the other a literal.
func asColRef(l, r scope.Expr) *scope.ColRef {
	lc, lok := l.(*scope.ColRef)
	rc, rok := r.(*scope.ColRef)
	switch {
	case lok && !rok:
		return lc
	case rok && !lok:
		return rc
	default:
		return nil
	}
}

func findCol(cols []scope.Column, name string) (scope.Column, bool) {
	for _, c := range cols {
		if c.Name == name {
			return c, true
		}
	}
	return scope.Column{}, false
}

// joinKeyNDV extracts the equi-join key columns from a join condition and
// returns the larger of the two key NDVs, the denominator of the classic
// join-size estimate |L||R|/max(ndv).
func joinKeyNDV(cond scope.Expr, leftCols, rightCols []scope.Column, leftRows, rightRows float64, stats StatsProvider) float64 {
	// Find the first equality between two columns.
	var eq *scope.BinaryExpr
	var scan func(e scope.Expr)
	scan = func(e scope.Expr) {
		if eq != nil {
			return
		}
		if be, ok := e.(*scope.BinaryExpr); ok {
			if be.Op == "==" {
				if _, lok := be.Left.(*scope.ColRef); lok {
					if _, rok := be.Right.(*scope.ColRef); rok {
						eq = be
						return
					}
				}
			}
			scan(be.Left)
			scan(be.Right)
		}
	}
	scan(cond)
	if eq == nil {
		return 1 // cross-join-like: no reduction
	}
	a := eq.Left.(*scope.ColRef)
	b := eq.Right.(*scope.ColRef)
	ndv := 1.0
	for _, pair := range []struct {
		ref  *scope.ColRef
		cols []scope.Column
		rows float64
	}{{a, leftCols, leftRows}, {b, rightCols, rightRows}, {a, rightCols, rightRows}, {b, leftCols, leftRows}} {
		if col, ok := findCol(pair.cols, pair.ref.Name); ok {
			ndv = math.Max(ndv, ndvOf(stats, col, pair.rows))
		}
	}
	return ndv
}

// HasEquiCond reports whether a join condition contains a column-to-column
// equality, which hash/merge join implementations require.
func HasEquiCond(cond scope.Expr) bool {
	switch e := cond.(type) {
	case *scope.BinaryExpr:
		if e.Op == "==" {
			_, lok := e.Left.(*scope.ColRef)
			_, rok := e.Right.(*scope.ColRef)
			if lok && rok {
				return true
			}
		}
		return HasEquiCond(e.Left) || HasEquiCond(e.Right)
	case *scope.UnaryExpr:
		return HasEquiCond(e.Expr)
	default:
		return false
	}
}

// cardEngine computes output cardinalities for logical nodes against an
// Environment. The same engine serves the optimizer (estimation
// environment) and the execution simulator (ground-truth environment), so
// the two disagree exactly where their environments disagree.
type cardEngine struct {
	env   Environment
	stats StatsProvider
	memo  map[*scope.Node]float64
}

func newCardEngine(env Environment, stats StatsProvider) *cardEngine {
	return &cardEngine{env: env, stats: stats, memo: make(map[*scope.Node]float64)}
}

// filterSel computes the selectivity of a predicate conjunct-by-conjunct,
// so that splitting or merging filters never changes cardinalities: each
// conjunct keeps its own stable site key.
func (ce *cardEngine) filterSel(pred scope.Expr, cols []scope.Column, rows float64) float64 {
	sel := 1.0
	for _, c := range scope.Conjuncts(pred) {
		heur := predSelectivity(c, cols, rows, ce.stats)
		sel *= clampSel(ce.env.Selectivity("filter:"+c.String(), heur))
	}
	return clampSel(sel)
}

// rows returns the output cardinality of a logical node.
func (ce *cardEngine) rows(n *scope.Node) float64 {
	if r, ok := ce.memo[n]; ok {
		return r
	}
	r := ce.compute(n)
	ce.memo[n] = r
	return r
}

func (ce *cardEngine) compute(n *scope.Node) float64 {
	switch n.Kind {
	case scope.OpScan:
		rows := ce.env.BaseRows(n.TablePath)
		if n.Pred != nil { // pushed-down scan predicate
			rows *= ce.filterSel(n.Pred, n.Cols, rows)
		}
		return clampCard(rows)

	case scope.OpFilter:
		in := ce.rows(n.Inputs[0])
		sel := ce.filterSel(n.Pred, n.Inputs[0].Cols, in)
		return clampCard(in * sel)

	case scope.OpJoin:
		l := ce.rows(n.Inputs[0])
		r := ce.rows(n.Inputs[1])
		switch n.JoinType {
		case scope.JoinSemi:
			sel := ce.env.Selectivity(n.SiteKey(), semiJoinSel)
			return clampCard(l * clampSel(sel))
		default:
			ndv := joinKeyNDV(n.JoinCond, n.Inputs[0].Cols, n.Inputs[1].Cols, l, r, ce.stats)
			heur := 1 / ndv
			sel := ce.env.Selectivity(n.SiteKey(), heur)
			out := l * r * sel
			switch n.JoinType {
			case scope.JoinLeft:
				out = math.Max(out, l)
			case scope.JoinRight:
				out = math.Max(out, r)
			case scope.JoinFull:
				out = math.Max(out, l+r)
			}
			return clampCard(out)
		}

	case scope.OpAgg:
		in := ce.rows(n.Inputs[0])
		if len(n.GroupBy) == 0 {
			return 1
		}
		groups := 1.0
		for _, g := range n.GroupBy {
			groups *= ndvOf(ce.stats, g, in)
		}
		heur := clampSel(math.Min(groups, in/2) / math.Max(in, 1))
		frac := ce.env.Selectivity(n.SiteKey(), heur)
		out := clampCard(in * clampSel(frac))
		if n.Partial {
			// A partial agg reduces within each partition only; model the
			// reduction as weaker than the final agg's.
			out = clampCard(math.Min(in, out*4))
		}
		return out

	case scope.OpDistinct:
		in := ce.rows(n.Inputs[0])
		groups := 1.0
		for _, c := range n.Cols {
			groups *= ndvOf(ce.stats, c, in)
		}
		heur := clampSel(math.Min(groups, in*0.9) / math.Max(in, 1))
		frac := ce.env.Selectivity(n.SiteKey(), heur)
		return clampCard(in * clampSel(frac))

	case scope.OpUnion:
		sum := 0.0
		for _, in := range n.Inputs {
			sum += ce.rows(in)
		}
		return clampCard(sum)

	case scope.OpSort, scope.OpProject, scope.OpOutput:
		return ce.rows(n.Inputs[0])

	case scope.OpTop:
		in := ce.rows(n.Inputs[0])
		return clampCard(math.Min(float64(n.TopN), in))

	case scope.OpReduce:
		in := ce.rows(n.Inputs[0])
		frac := ce.env.Selectivity(n.SiteKey(), reduceFrac)
		return clampCard(in * clampSel(frac))

	case scope.OpProcess:
		in := ce.rows(n.Inputs[0])
		frac := ce.env.Selectivity(n.SiteKey(), processFrac)
		return clampCard(in * clampSel(frac))

	default:
		if len(n.Inputs) > 0 {
			return ce.rows(n.Inputs[0])
		}
		return 1
	}
}

// Cost model weights. The estimated cost is a unitless quantity combining
// CPU and I/O work; its weights deliberately differ from the execution
// simulator's true time constants — cost models are "well known to be
// lacking" (§2.2) and that gap is central to the paper's findings.
const (
	costCPUPerRow      = 1.0
	costIOPerByte      = 0.02
	costHashBuildRow   = 2.0
	costSortRowLog     = 0.4
	costNLJPerRowPair  = 0.01
	costExchangePerB   = 0.004
	costBroadcastPerB  = 0.003
	costSeekReduction  = 0.05
	costStartupPerPart = 1500.0
)

// nodeCost returns the estimated cost of one physical operator given its
// (estimated) input and output cardinalities.
func nodeCost(n *PhysNode, inRows []float64, outRows float64) float64 {
	width := float64(n.RowWidth)
	totalIn := 0.0
	for _, r := range inRows {
		totalIn += r
	}
	switch n.Op {
	case PhysRowScan:
		// Row stores read the full base row width but stitch no columns.
		baseW := float64(n.BaseWidth)
		if baseW == 0 {
			baseW = width
		}
		return outRows*costCPUPerRow*0.6 + outRows*baseW*costIOPerByte
	case PhysColumnScan:
		return outRows*costCPUPerRow + outRows*width*costIOPerByte*0.7
	case PhysIndexSeek:
		return outRows*costCPUPerRow + outRows*width*costIOPerByte*costSeekReduction
	case PhysFilter, PhysProject, PhysProcess:
		return totalIn * costCPUPerRow
	case PhysHashJoin:
		build := 0.0
		if len(inRows) == 2 {
			build = inRows[1] * costHashBuildRow
		}
		return totalIn*costCPUPerRow + build + outRows*costCPUPerRow*0.5
	case PhysMergeJoin:
		return totalIn*costCPUPerRow*1.2 + outRows*costCPUPerRow*0.5
	case PhysBroadcastJoin:
		build := 0.0
		if len(inRows) == 2 {
			build = inRows[1] * costHashBuildRow
		}
		return totalIn*costCPUPerRow + build + outRows*costCPUPerRow*0.5
	case PhysNestedLoopJoin:
		if len(inRows) == 2 {
			return inRows[0]*inRows[1]*costNLJPerRowPair + outRows*costCPUPerRow
		}
		return totalIn * costCPUPerRow
	case PhysHashAgg:
		return totalIn*costCPUPerRow*1.5 + outRows*costCPUPerRow
	case PhysStreamAgg:
		// Stream aggregation sorts its input first: cheap for small
		// groups-in, expensive at scale.
		return totalIn*costCPUPerRow*(0.6+0.055*math.Log2(math.Max(totalIn, 2))) + outRows*costCPUPerRow*0.5
	case PhysSort, PhysTopNSort:
		return totalIn * costSortRowLog * math.Log2(math.Max(totalIn, 2))
	case PhysTopNHeap:
		return totalIn * costCPUPerRow * 1.2
	case PhysConcatUnion:
		return totalIn * costCPUPerRow * 0.2
	case PhysSortedUnion:
		return totalIn * costCPUPerRow * 0.6
	case PhysExchange:
		bytes := totalIn * width
		per := costExchangePerB
		cpu := totalIn * costCPUPerRow * 0.3
		if n.Exchange == ExchangeBroadcast {
			per = costBroadcastPerB * float64(maxInt(n.Partitions, 1))
		}
		if n.Compress {
			// Compression trades bytes moved for CPU: worthwhile for wide
			// rows, harmful for narrow ones.
			per *= 0.6
			cpu = totalIn * costCPUPerRow * 0.9
		}
		return bytes*per + cpu
	case PhysReduce:
		return totalIn*costCPUPerRow*2 + outRows*costCPUPerRow
	case PhysOutput:
		return totalIn * width * costIOPerByte
	default:
		return totalIn * costCPUPerRow
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
