package optimizer

import (
	"hash/fnv"
	"math"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

// maxRewriteFires bounds the number of rule firings per compilation, a
// safety valve against pathological rewrite interactions.
const maxRewriteFires = 400

// rewriter applies the enabled logical transformation rules to a plan DAG
// until fixpoint, recording every fired rule in the signature.
type rewriter struct {
	g     *scope.Graph
	cfg   rules.Config
	cat   *rules.Catalog
	sig   *rules.Signature
	stats StatsProvider
	env   Environment

	kindRules map[rules.Kind][]rules.Rule
	parents   map[*scope.Node][]*scope.Node
	est       *cardEngine

	// noMerge marks filters produced by SplitComplexFilter so that
	// MergeFilters does not undo the split in the same compilation.
	noMerge map[*scope.Node]bool
}

func newRewriter(g *scope.Graph, cfg rules.Config, cat *rules.Catalog, sig *rules.Signature, stats StatsProvider, env Environment) *rewriter {
	kr := make(map[rules.Kind][]rules.Rule)
	for _, r := range cat.All() {
		kr[r.Kind] = append(kr[r.Kind], r)
	}
	return &rewriter{
		g: g, cfg: cfg, cat: cat, sig: sig, stats: stats, env: env,
		kindRules: kr,
		noMerge:   make(map[*scope.Node]bool),
	}
}

// gate returns the stable gating hash of a node: its site key when it has
// one (stable across rewrites), else its structural fingerprint.
func gate(n *scope.Node) uint64 {
	if k := n.SiteKey(); k != "" {
		h := fnv.New64a()
		h.Write([]byte(k))
		return h.Sum64()
	}
	return n.Fingerprint()
}

// ruleFor selects the catalog rule responsible for applying the given
// kind at the given site: sibling variants partition sites by gate hash.
// It returns the rule and whether it is enabled in the configuration.
func (rw *rewriter) ruleFor(kind rules.Kind, g uint64) (rules.Rule, bool) {
	rs := rw.kindRules[kind]
	if len(rs) == 0 {
		return rules.Rule{}, false
	}
	r := rs[g%uint64(len(rs))]
	return r, rw.cfg.Enabled(r.ID)
}

// fire records a rule firing in the signature.
func (rw *rewriter) fire(r rules.Rule) { rw.sig.Record(r.ID) }

// refresh rebuilds the parent map and cardinality memo after a mutation.
func (rw *rewriter) refresh() {
	rw.parents = make(map[*scope.Node][]*scope.Node)
	for _, n := range rw.g.Nodes() {
		for _, in := range n.Inputs {
			rw.parents[in] = append(rw.parents[in], n)
		}
	}
	rw.est = newCardEngine(rw.env, rw.stats)
}

// singleParent reports whether n has exactly one consumer and is not a root.
func (rw *rewriter) singleParent(n *scope.Node) bool {
	for _, r := range rw.g.Roots {
		if r == n {
			return false
		}
	}
	return len(rw.parents[n]) == 1
}

// replaceEverywhere rewires every consumer (and root slot) of old to new.
func (rw *rewriter) replaceEverywhere(old, new *scope.Node) {
	for _, p := range rw.parents[old] {
		for i, in := range p.Inputs {
			if in == old {
				p.Inputs[i] = new
			}
		}
	}
	for i, r := range rw.g.Roots {
		if r == old {
			rw.g.Roots[i] = new
		}
	}
}

// run applies rewrites to fixpoint, then the global one-shot analyses.
func (rw *rewriter) run() {
	fires := 0
	for fires < maxRewriteFires {
		rw.refresh()
		if !rw.tryAll() {
			break
		}
		fires++
	}
	rw.refresh()
	rw.trySemiJoinReduction()
	rw.refresh()
	rw.tryPruneColumns()
	rw.recomputeSchemas()
}

// tryAll attempts one rewrite anywhere in the DAG and reports whether one
// fired. Nodes are visited in topological order for determinism.
func (rw *rewriter) tryAll() bool {
	for _, n := range rw.g.Nodes() {
		switch n.Kind {
		case scope.OpFilter:
			if rw.tryPushFilterIntoScan(n) ||
				rw.tryPushFilterBelowProject(n) ||
				rw.tryPushFilterBelowJoin(n) ||
				rw.tryPushFilterBelowUnion(n) ||
				rw.tryPushFilterBelowAgg(n) ||
				rw.trySplitComplexFilter(n) ||
				rw.tryMergeFilters(n) ||
				rw.tryProjectPullUp(n) {
				return true
			}
		case scope.OpProject:
			if rw.tryMergeProjects(n) {
				return true
			}
		case scope.OpDistinct:
			if rw.tryEliminateDistinct(n) ||
				rw.tryUnionDedupPushdown(n) ||
				rw.tryDistinctToAgg(n) {
				return true
			}
		case scope.OpAgg:
			if rw.tryPartialAggBelowJoin(n) ||
				rw.tryLocalGlobalAgg(n) {
				return true
			}
		case scope.OpJoin:
			if rw.tryJoinCommute(n) ||
				rw.tryJoinAssociate(n) ||
				rw.tryBroadcastAnnotation(n) ||
				rw.tryJoinPredicateInference(n) {
				return true
			}
		case scope.OpSort:
			if rw.tryRemoveRedundantSort(n) {
				return true
			}
		case scope.OpTop:
			if rw.tryTopNPushdown(n) {
				return true
			}
		case scope.OpUnion:
			if rw.tryFlattenUnion(n) {
				return true
			}
		}
	}
	return false
}

func copyCols(n *scope.Node) []scope.Column {
	return append([]scope.Column(nil), n.Cols...)
}

// newFilter creates a filter node over input with the given predicate.
func (rw *rewriter) newFilter(pred scope.Expr, input *scope.Node) *scope.Node {
	f := rw.g.NewNode(scope.OpFilter, input)
	f.Pred = pred
	f.Cols = copyCols(input)
	return f
}

// --- Filter rewrites ---

func (rw *rewriter) tryPushFilterIntoScan(f *scope.Node) bool {
	in := f.Inputs[0]
	if in.Kind != scope.OpScan || !rw.singleParent(in) {
		return false
	}
	r, ok := rw.ruleFor(rules.KindPushFilterIntoScan, gate(f))
	if !ok {
		return false
	}
	if in.Pred == nil {
		in.Pred = f.Pred
	} else {
		in.Pred = &scope.BinaryExpr{Op: "AND", Left: in.Pred, Right: f.Pred}
	}
	rw.replaceEverywhere(f, in)
	rw.fire(r)
	return true
}

func (rw *rewriter) tryPushFilterBelowProject(f *scope.Node) bool {
	in := f.Inputs[0]
	if in.Kind != scope.OpProject || !rw.singleParent(in) {
		return false
	}
	// Every reference must map to a pure column reference in the project.
	mapping := make(map[string]string)
	for name := range scope.RefNames(f.Pred) {
		var mapped *scope.ColRef
		for _, p := range in.Projs {
			if p.Name == name {
				if cr, ok := p.E.(*scope.ColRef); ok {
					mapped = cr
				}
				break
			}
		}
		if mapped == nil {
			return false
		}
		mapping[name] = mapped.Name
	}
	r, ok := rw.ruleFor(rules.KindPushFilterBelowProject, gate(f))
	if !ok {
		return false
	}
	nf := rw.newFilter(scope.RenameRefs(f.Pred, mapping), in.Inputs[0])
	in.Inputs[0] = nf
	rw.replaceEverywhere(f, in)
	rw.fire(r)
	return true
}

// joinSides classifies the merged output columns of a join node.
func joinSides(j *scope.Node) (left map[string]bool, rightMergedToOrig map[string]string) {
	left = make(map[string]bool)
	for _, c := range j.Inputs[0].Cols {
		left[c.Name] = true
	}
	rightMergedToOrig = make(map[string]string)
	rightOrig := make(map[string]bool)
	for _, c := range j.Inputs[1].Cols {
		rightOrig[c.Name] = true
	}
	for _, c := range j.Cols {
		if left[c.Name] {
			continue
		}
		orig := c.Name
		if j.RightRenames != nil {
			if o, ok := j.RightRenames[c.Name]; ok {
				orig = o
			}
		}
		if rightOrig[orig] {
			rightMergedToOrig[c.Name] = orig
		}
	}
	return left, rightMergedToOrig
}

func subsetOf(refs map[string]bool, set map[string]bool) bool {
	for r := range refs {
		if !set[r] {
			return false
		}
	}
	return true
}

func (rw *rewriter) tryPushFilterBelowJoin(f *scope.Node) bool {
	j := f.Inputs[0]
	if j.Kind != scope.OpJoin || j.JoinType != scope.JoinInner || !rw.singleParent(j) {
		return false
	}
	r, ok := rw.ruleFor(rules.KindPushFilterBelowJoin, gate(f))
	if !ok {
		return false
	}
	left, rightMap := joinSides(j)
	rightSet := make(map[string]bool, len(rightMap))
	for m := range rightMap {
		rightSet[m] = true
	}
	var pushLeft, pushRight, remain []scope.Expr
	for _, c := range scope.Conjuncts(f.Pred) {
		refs := scope.RefNames(c)
		switch {
		case len(refs) > 0 && subsetOf(refs, left):
			pushLeft = append(pushLeft, c)
		case len(refs) > 0 && subsetOf(refs, rightSet):
			pushRight = append(pushRight, scope.RenameRefs(c, rightMap))
		default:
			remain = append(remain, c)
		}
	}
	if len(pushLeft) == 0 && len(pushRight) == 0 {
		return false
	}
	if len(pushLeft) > 0 {
		j.Inputs[0] = rw.newFilter(scope.AndAll(pushLeft), j.Inputs[0])
	}
	if len(pushRight) > 0 {
		j.Inputs[1] = rw.newFilter(scope.AndAll(pushRight), j.Inputs[1])
	}
	if len(remain) == 0 {
		rw.replaceEverywhere(f, j)
	} else {
		f.Pred = scope.AndAll(remain)
	}
	rw.fire(r)
	return true
}

func (rw *rewriter) tryPushFilterBelowUnion(f *scope.Node) bool {
	u := f.Inputs[0]
	if u.Kind != scope.OpUnion || !rw.singleParent(u) {
		return false
	}
	r, ok := rw.ruleFor(rules.KindPushFilterBelowUnion, gate(f))
	if !ok {
		return false
	}
	for i, in := range u.Inputs {
		mapping := make(map[string]string)
		for pos, c := range u.Cols {
			if pos < len(in.Cols) {
				mapping[c.Name] = in.Cols[pos].Name
			}
		}
		u.Inputs[i] = rw.newFilter(scope.RenameRefs(f.Pred, mapping), in)
	}
	rw.replaceEverywhere(f, u)
	rw.fire(r)
	return true
}

func (rw *rewriter) tryPushFilterBelowAgg(f *scope.Node) bool {
	a := f.Inputs[0]
	if a.Kind != scope.OpAgg || a.Partial || !rw.singleParent(a) {
		return false
	}
	gb := make(map[string]bool)
	for _, c := range a.GroupBy {
		gb[c.Name] = true
	}
	if !subsetOf(scope.RefNames(f.Pred), gb) {
		return false
	}
	r, ok := rw.ruleFor(rules.KindPushFilterBelowAgg, gate(f))
	if !ok {
		return false
	}
	a.Inputs[0] = rw.newFilter(f.Pred, a.Inputs[0])
	rw.replaceEverywhere(f, a)
	rw.fire(r)
	return true
}

func (rw *rewriter) trySplitComplexFilter(f *scope.Node) bool {
	if rw.noMerge[f] {
		return false
	}
	conjs := scope.Conjuncts(f.Pred)
	if len(conjs) < 2 {
		return false
	}
	// Splitting only helps when the pieces can move independently; gate
	// it to filters sitting on joins or unions.
	below := f.Inputs[0].Kind
	if below != scope.OpJoin && below != scope.OpUnion {
		return false
	}
	r, ok := rw.ruleFor(rules.KindSplitComplexFilter, gate(f))
	if !ok {
		return false
	}
	bottom := rw.newFilter(conjs[len(conjs)-1], f.Inputs[0])
	top := rw.newFilter(scope.AndAll(conjs[:len(conjs)-1]), bottom)
	rw.noMerge[bottom] = true
	rw.noMerge[top] = true
	rw.replaceEverywhere(f, top)
	rw.fire(r)
	return true
}

func (rw *rewriter) tryMergeFilters(f *scope.Node) bool {
	in := f.Inputs[0]
	if in.Kind != scope.OpFilter || !rw.singleParent(in) || rw.noMerge[f] || rw.noMerge[in] {
		return false
	}
	r, ok := rw.ruleFor(rules.KindMergeFilters, gate(f))
	if !ok {
		return false
	}
	f.Pred = &scope.BinaryExpr{Op: "AND", Left: in.Pred, Right: f.Pred}
	f.Inputs[0] = in.Inputs[0]
	rw.fire(r)
	return true
}

func (rw *rewriter) tryProjectPullUp(f *scope.Node) bool {
	p := f.Inputs[0]
	if p.Kind != scope.OpProject || !rw.singleParent(p) {
		return false
	}
	// Only fire when filter pushdown below the project is impossible:
	// at least one referenced projection is a computed expression.
	computed := false
	projMap := make(map[string]scope.Expr)
	for _, pe := range p.Projs {
		projMap[pe.Name] = pe.E
	}
	for name := range scope.RefNames(f.Pred) {
		e, ok := projMap[name]
		if !ok {
			return false
		}
		if _, isRef := e.(*scope.ColRef); !isRef {
			computed = true
		}
	}
	if !computed {
		return false
	}
	r, ok := rw.ruleFor(rules.KindProjectPullUp, gate(f))
	if !ok {
		return false
	}
	nf := rw.newFilter(scope.SubstituteRefs(f.Pred, projMap), p.Inputs[0])
	p.Inputs[0] = nf
	rw.replaceEverywhere(f, p)
	rw.fire(r)
	return true
}

// --- Project rewrites ---

func (rw *rewriter) tryMergeProjects(p *scope.Node) bool {
	in := p.Inputs[0]
	if in.Kind != scope.OpProject || !rw.singleParent(in) {
		return false
	}
	r, ok := rw.ruleFor(rules.KindMergeProjects, gate(p))
	if !ok {
		return false
	}
	inner := make(map[string]scope.Expr)
	for _, pe := range in.Projs {
		inner[pe.Name] = pe.E
	}
	for i := range p.Projs {
		p.Projs[i].E = scope.SubstituteRefs(p.Projs[i].E, inner)
	}
	p.Inputs[0] = in.Inputs[0]
	rw.fire(r)
	return true
}

// --- Distinct rewrites ---

func (rw *rewriter) tryEliminateDistinct(d *scope.Node) bool {
	in := d.Inputs[0]
	inRows := rw.est.rows(in)
	outRows := rw.est.rows(d)
	if outRows < inRows*0.95 {
		return false
	}
	r, ok := rw.ruleFor(rules.KindEliminateDistinctOnKey, gate(d))
	if !ok {
		return false
	}
	rw.replaceEverywhere(d, in)
	rw.fire(r)
	return true
}

func (rw *rewriter) tryUnionDedupPushdown(d *scope.Node) bool {
	u := d.Inputs[0]
	if u.Kind != scope.OpUnion || !rw.singleParent(u) {
		return false
	}
	r, ok := rw.ruleFor(rules.KindUnionDedupPushdown, gate(d))
	if !ok {
		return false
	}
	fired := false
	for i, in := range u.Inputs {
		if in.Kind == scope.OpDistinct || in.Kind == scope.OpAgg {
			continue
		}
		nd := rw.g.NewNode(scope.OpDistinct, in)
		nd.Cols = copyCols(in)
		u.Inputs[i] = nd
		fired = true
	}
	if !fired {
		return false
	}
	rw.fire(r)
	return true
}

func (rw *rewriter) tryDistinctToAgg(d *scope.Node) bool {
	r, ok := rw.ruleFor(rules.KindDistinctToAgg, gate(d))
	if !ok {
		return false
	}
	a := rw.g.NewNode(scope.OpAgg, d.Inputs[0])
	a.GroupBy = copyCols(d)
	a.Cols = copyCols(d)
	rw.replaceEverywhere(d, a)
	rw.fire(r)
	return true
}

// --- Aggregation rewrites ---

// decomposableAggs reports whether every aggregate can be split into a
// partial and final phase.
func decomposableAggs(aggs []scope.AggSpec) bool {
	for _, a := range aggs {
		if a.Func == "AVG" {
			return false
		}
	}
	return true
}

// tryLocalGlobalAgg splits an aggregation into a partial (pre-shuffle)
// and final phase. The partial aggregation is modelled as a row-reducing
// pass-through: it keeps its input schema and shrinks cardinality, which
// is what matters to cost and data volume.
func (rw *rewriter) tryLocalGlobalAgg(a *scope.Node) bool {
	if a.Partial || len(a.GroupBy) == 0 || !decomposableAggs(a.Aggs) {
		return false
	}
	in := a.Inputs[0]
	if in.Kind == scope.OpAgg && in.Partial {
		return false // already split
	}
	r, ok := rw.ruleFor(rules.KindLocalGlobalAgg, gate(a))
	if !ok {
		return false
	}
	partial := rw.g.NewNode(scope.OpAgg, in)
	partial.Partial = true
	partial.GroupBy = append([]scope.Column(nil), a.GroupBy...)
	partial.Cols = copyCols(in)
	a.Inputs[0] = partial
	rw.fire(r)
	return true
}

func (rw *rewriter) tryPartialAggBelowJoin(a *scope.Node) bool {
	if a.Partial || len(a.GroupBy) == 0 || !decomposableAggs(a.Aggs) {
		return false
	}
	j := a.Inputs[0]
	if j.Kind != scope.OpJoin || j.JoinType != scope.JoinInner || !rw.singleParent(j) {
		return false
	}
	if j.Inputs[0].Kind == scope.OpAgg && j.Inputs[0].Partial {
		return false
	}
	left, _ := joinSides(j)
	needed := make(map[string]bool)
	for _, g := range a.GroupBy {
		needed[g.Name] = true
	}
	for _, spec := range a.Aggs {
		if spec.Arg != nil {
			for n := range scope.RefNames(spec.Arg) {
				needed[n] = true
			}
		}
	}
	if !subsetOf(needed, left) {
		return false
	}
	r, ok := rw.ruleFor(rules.KindPartialAggBelowJoin, gate(a))
	if !ok {
		return false
	}
	// Key the partial agg by the aggregation keys plus the left-side join
	// keys so the join result is preserved.
	keys := make(map[string]bool)
	for n := range needed {
		keys[n] = true
	}
	for n := range scope.RefNames(j.JoinCond) {
		if left[n] {
			keys[n] = true
		}
	}
	partial := rw.g.NewNode(scope.OpAgg, j.Inputs[0])
	partial.Partial = true
	for _, c := range j.Inputs[0].Cols {
		if keys[c.Name] {
			partial.GroupBy = append(partial.GroupBy, c)
		}
	}
	partial.Cols = copyCols(j.Inputs[0])
	j.Inputs[0] = partial
	rw.fire(r)
	return true
}

// --- Join rewrites ---

func (rw *rewriter) tryJoinCommute(j *scope.Node) bool {
	if j.JoinType != scope.JoinInner || j.BuildLeft {
		return false
	}
	l := rw.est.rows(j.Inputs[0])
	rr := rw.est.rows(j.Inputs[1])
	if l >= rr {
		return false // right is already the smaller (build) side
	}
	r, ok := rw.ruleFor(rules.KindJoinCommute, gate(j))
	if !ok {
		return false
	}
	j.BuildLeft = true
	rw.fire(r)
	return true
}

// tryJoinAssociate rotates a left-deep pair of inner joins
// (A ⋈ B) ⋈ C into A ⋈ (B ⋈ C) when the outer condition only touches
// B and C and the rotation shrinks the intermediate result. The rule is
// experimental (off by default): join reordering is very sensitive to
// cardinality estimates.
func (rw *rewriter) tryJoinAssociate(j *scope.Node) bool {
	if j.JoinType != scope.JoinInner {
		return false
	}
	inner := j.Inputs[0]
	if inner.Kind != scope.OpJoin || inner.JoinType != scope.JoinInner || !rw.singleParent(inner) {
		return false
	}
	// Renamed columns make reference rewiring ambiguous; require the
	// simple disjoint-name case (identity mappings are fine).
	if hasRealRenames(j.RightRenames) || hasRealRenames(inner.RightRenames) {
		return false
	}
	a, bNode, c := inner.Inputs[0], inner.Inputs[1], j.Inputs[1]
	aNames := make(map[string]bool, len(a.Cols))
	for _, col := range a.Cols {
		aNames[col.Name] = true
	}
	// The outer condition must be evaluable on B ⋈ C alone.
	for name := range scope.RefNames(j.JoinCond) {
		if aNames[name] {
			return false
		}
	}
	r, ok := rw.ruleFor(rules.KindJoinAssociate, gate(j))
	if !ok {
		return false
	}
	// Build the candidate B ⋈ C and keep the rotation only if it shrinks
	// the intermediate result.
	inner2 := rw.g.NewNode(scope.OpJoin, bNode, c)
	inner2.JoinType = scope.JoinInner
	inner2.JoinCond = j.JoinCond
	inner2.Cols = append(copyCols(bNode), c.Cols...)
	if rw.est.rows(inner2) >= rw.est.rows(inner) {
		return false // abandoned candidate node is unreachable garbage
	}
	j.Inputs[0] = a
	j.Inputs[1] = inner2
	j.JoinCond = inner.JoinCond
	j.Cols = append(copyCols(a), inner2.Cols...)
	j.BuildLeft = false
	rw.fire(r)
	return true
}

// hasRealRenames reports whether any merged column name differs from the
// original right-side name.
func hasRealRenames(m map[string]string) bool {
	for merged, orig := range m {
		if merged != orig {
			return true
		}
	}
	return false
}

// broadcastThresholds maps the rule variant to the maximum build-side
// cardinality eligible for broadcasting.
var broadcastThresholds = []float64{2e5, 1e6, 5e6}

func (rw *rewriter) tryBroadcastAnnotation(j *scope.Node) bool {
	if j.BroadcastRight || j.JoinType == scope.JoinFull {
		return false
	}
	r, ok := rw.ruleFor(rules.KindBroadcastAnnotation, gate(j))
	if !ok {
		return false
	}
	build := j.Inputs[1]
	if j.BuildLeft {
		build = j.Inputs[0]
	}
	threshold := broadcastThresholds[r.Variant%len(broadcastThresholds)]
	if rw.est.rows(build) >= threshold {
		return false
	}
	j.BroadcastRight = true
	rw.fire(r)
	return true
}

func (rw *rewriter) tryJoinPredicateInference(j *scope.Node) bool {
	if j.JoinType != scope.JoinInner {
		return false
	}
	lf := j.Inputs[0]
	if lf.Kind != scope.OpFilter {
		return false
	}
	// Find an equi-join key pair and a literal equality on the left key.
	leftKey, rightKey := equiKeys(j)
	if leftKey == "" {
		return false
	}
	var lit scope.Expr
	for _, c := range scope.Conjuncts(lf.Pred) {
		be, ok := c.(*scope.BinaryExpr)
		if !ok || be.Op != "==" {
			continue
		}
		if cr, isRef := be.Left.(*scope.ColRef); isRef && cr.Name == leftKey {
			if isLiteral(be.Right) {
				lit = be.Right
			}
		}
	}
	if lit == nil {
		return false
	}
	inferred := &scope.BinaryExpr{Op: "==", Left: &scope.ColRef{Name: rightKey}, Right: lit}
	// Don't re-infer a filter that is already there.
	if rf := j.Inputs[1]; rf.Kind == scope.OpFilter {
		for _, c := range scope.Conjuncts(rf.Pred) {
			if c.String() == inferred.String() {
				return false
			}
		}
	}
	r, ok := rw.ruleFor(rules.KindJoinPredicateInference, gate(j))
	if !ok {
		return false
	}
	j.Inputs[1] = rw.newFilter(inferred, j.Inputs[1])
	rw.fire(r)
	return true
}

func isLiteral(e scope.Expr) bool {
	switch e.(type) {
	case *scope.IntLit, *scope.FloatLit, *scope.StringLit, *scope.BoolLit:
		return true
	default:
		return false
	}
}

// equiKeys returns the first equi-join key pair (left column, right
// column in the right input's original naming) of a join, or empty strings.
func equiKeys(j *scope.Node) (leftKey, rightKey string) {
	left, rightMap := joinSides(j)
	for _, c := range scope.Conjuncts(j.JoinCond) {
		be, ok := c.(*scope.BinaryExpr)
		if !ok || be.Op != "==" {
			continue
		}
		a, aok := be.Left.(*scope.ColRef)
		b, bok := be.Right.(*scope.ColRef)
		if !aok || !bok {
			continue
		}
		if left[a.Name] {
			if orig, ok := rightMap[b.Name]; ok {
				return a.Name, orig
			}
			// Unrenamed right column.
			for _, rc := range j.Inputs[1].Cols {
				if rc.Name == b.Name {
					return a.Name, b.Name
				}
			}
		}
		if left[b.Name] {
			if orig, ok := rightMap[a.Name]; ok {
				return b.Name, orig
			}
			for _, rc := range j.Inputs[1].Cols {
				if rc.Name == a.Name {
					return b.Name, a.Name
				}
			}
		}
	}
	return "", ""
}

// --- Sort / Top / Union rewrites ---

// orderDestroying reports whether a consumer does not preserve input order.
func orderDestroying(k scope.OpKind) bool {
	switch k {
	case scope.OpAgg, scope.OpDistinct, scope.OpJoin, scope.OpUnion:
		return true
	default:
		return false
	}
}

func (rw *rewriter) tryRemoveRedundantSort(s *scope.Node) bool {
	ps := rw.parents[s]
	if len(ps) == 0 {
		return false // root-adjacent sorts handled below via Output parents
	}
	for _, p := range ps {
		if !orderDestroying(p.Kind) {
			return false
		}
	}
	r, ok := rw.ruleFor(rules.KindRemoveRedundantSort, gate(s))
	if !ok {
		return false
	}
	rw.replaceEverywhere(s, s.Inputs[0])
	rw.fire(r)
	return true
}

func (rw *rewriter) tryTopNPushdown(t *scope.Node) bool {
	u := t.Inputs[0]
	if u.Kind != scope.OpUnion || !rw.singleParent(u) {
		return false
	}
	// Skip if the inputs already carry this Top.
	for _, in := range u.Inputs {
		if in.Kind == scope.OpTop && in.TopN == t.TopN {
			return false
		}
	}
	r, ok := rw.ruleFor(rules.KindTopNPushdown, gate(t))
	if !ok {
		return false
	}
	for i, in := range u.Inputs {
		nt := rw.g.NewNode(scope.OpTop, in)
		nt.TopN = t.TopN
		// Map sort keys by position into the input's naming.
		mapping := make(map[string]string)
		for pos, c := range u.Cols {
			if pos < len(in.Cols) {
				mapping[c.Name] = in.Cols[pos].Name
			}
		}
		for _, k := range t.SortKeys {
			nt.SortKeys = append(nt.SortKeys, scope.SortKey{
				Col:  &scope.ColRef{Name: mappedName(mapping, k.Col.Name)},
				Desc: k.Desc,
			})
		}
		nt.Cols = copyCols(in)
		u.Inputs[i] = nt
	}
	rw.fire(r)
	return true
}

func mappedName(mapping map[string]string, name string) string {
	if to, ok := mapping[name]; ok {
		return to
	}
	return name
}

func (rw *rewriter) tryFlattenUnion(u *scope.Node) bool {
	idx := -1
	for i, in := range u.Inputs {
		if in.Kind == scope.OpUnion && rw.singleParent(in) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	r, ok := rw.ruleFor(rules.KindFlattenUnion, gate(u))
	if !ok {
		return false
	}
	inner := u.Inputs[idx]
	spliced := make([]*scope.Node, 0, len(u.Inputs)+len(inner.Inputs)-1)
	spliced = append(spliced, u.Inputs[:idx]...)
	spliced = append(spliced, inner.Inputs...)
	spliced = append(spliced, u.Inputs[idx+1:]...)
	u.Inputs = spliced
	rw.fire(r)
	return true
}

// --- Global analyses ---

// neededColumns computes, for every node, the set of its output columns
// required by its consumers (all columns for roots).
func (rw *rewriter) neededColumns() map[*scope.Node]map[string]bool {
	nodes := rw.g.Nodes()
	needed := make(map[*scope.Node]map[string]bool, len(nodes))
	addAll := func(n *scope.Node) {
		m := needed[n]
		if m == nil {
			m = make(map[string]bool)
			needed[n] = m
		}
		for _, c := range n.Cols {
			m[c.Name] = true
		}
	}
	add := func(n *scope.Node, name string) {
		m := needed[n]
		if m == nil {
			m = make(map[string]bool)
			needed[n] = m
		}
		m[name] = true
	}
	for _, r := range rw.g.Roots {
		addAll(r)
	}
	// Reverse topological order: consumers before producers.
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		out := needed[n]
		if out == nil {
			out = make(map[string]bool)
			needed[n] = out
		}
		switch n.Kind {
		case scope.OpFilter:
			in := n.Inputs[0]
			for name := range out {
				add(in, name)
			}
			for name := range scope.RefNames(n.Pred) {
				add(in, name)
			}
		case scope.OpProject:
			in := n.Inputs[0]
			for _, p := range n.Projs {
				if out[p.Name] {
					for name := range scope.RefNames(p.E) {
						add(in, name)
					}
				}
			}
		case scope.OpJoin:
			left, rightMap := joinSides(n)
			l, rr := n.Inputs[0], n.Inputs[1]
			propagate := func(name string) {
				if left[name] {
					add(l, name)
				} else if orig, ok := rightMap[name]; ok {
					add(rr, orig)
				} else {
					// Unrenamed right column.
					add(rr, name)
				}
			}
			for name := range out {
				propagate(name)
			}
			for name := range scope.RefNames(n.JoinCond) {
				propagate(name)
			}
		case scope.OpAgg:
			in := n.Inputs[0]
			if n.Partial {
				for name := range out {
					add(in, name)
				}
			}
			for _, g := range n.GroupBy {
				add(in, g.Name)
			}
			for _, a := range n.Aggs {
				if a.Arg != nil {
					for name := range scope.RefNames(a.Arg) {
						add(in, name)
					}
				}
			}
		case scope.OpDistinct:
			addAll(n.Inputs[0])
		case scope.OpUnion:
			for _, in := range n.Inputs {
				for pos, c := range n.Cols {
					if out[c.Name] && pos < len(in.Cols) {
						add(in, in.Cols[pos].Name)
					}
				}
			}
		case scope.OpSort, scope.OpTop:
			in := n.Inputs[0]
			for name := range out {
				add(in, name)
			}
			for _, k := range n.SortKeys {
				add(in, k.Col.Name)
			}
		case scope.OpReduce, scope.OpProcess, scope.OpOutput:
			if len(n.Inputs) > 0 {
				addAll(n.Inputs[0])
			}
		}
	}
	return needed
}

// tryPruneColumns narrows scan schemas to the columns actually required
// upstream, the classic column-pruning optimization. Each scan is gated by
// its own PruneColumns sibling rule.
func (rw *rewriter) tryPruneColumns() {
	needed := rw.neededColumns()
	for _, n := range rw.g.Nodes() {
		if n.Kind != scope.OpScan {
			continue
		}
		req := needed[n]
		if n.Pred != nil {
			for name := range scope.RefNames(n.Pred) {
				req[name] = true
			}
		}
		var kept []scope.Column
		for _, c := range n.Cols {
			if req[c.Name] {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			kept = n.Cols[:1]
		}
		if len(kept) == len(n.Cols) {
			continue
		}
		r, ok := rw.ruleFor(rules.KindPruneColumns, gate(n))
		if !ok {
			continue
		}
		n.Cols = kept
		rw.fire(r)
	}
}

// trySemiJoinReduction converts inner joins whose right side contributes
// no output columns into semi joins.
func (rw *rewriter) trySemiJoinReduction() {
	needed := rw.neededColumns()
	for _, n := range rw.g.Nodes() {
		if n.Kind != scope.OpJoin || n.JoinType != scope.JoinInner {
			continue
		}
		if !HasEquiCond(n.JoinCond) {
			continue
		}
		left, _ := joinSides(n)
		usesRight := false
		for name := range needed[n] {
			if !left[name] { // any needed column not from the left comes from the right
				usesRight = true
				break
			}
		}
		if usesRight {
			continue
		}
		r, ok := rw.ruleFor(rules.KindSemiJoinReduction, gate(n))
		if !ok {
			continue
		}
		n.JoinType = scope.JoinSemi
		n.Cols = copyCols(n.Inputs[0])
		n.RightRenames = nil
		rw.fire(r)
	}
}

// recomputeSchemas refreshes the Cols of every node after pruning and
// structural rewrites so that row widths reflect the final plan.
func (rw *rewriter) recomputeSchemas() {
	for _, n := range rw.g.Nodes() { // topological: inputs first
		switch n.Kind {
		case scope.OpScan, scope.OpReduce, scope.OpProcess:
			// Own schema: unchanged.
		case scope.OpFilter, scope.OpSort, scope.OpTop, scope.OpDistinct, scope.OpOutput:
			n.Cols = copyCols(n.Inputs[0])
		case scope.OpProject:
			// Keep projection outputs; they are independent of input width.
		case scope.OpJoin:
			if n.JoinType == scope.JoinSemi {
				n.Cols = copyCols(n.Inputs[0])
				continue
			}
			inverse := make(map[string]string) // orig -> merged
			for m, o := range n.RightRenames {
				inverse[o] = m
			}
			cols := copyCols(n.Inputs[0])
			for _, c := range n.Inputs[1].Cols {
				mc := c
				if m, ok := inverse[c.Name]; ok {
					mc.Name = m
				}
				cols = append(cols, mc)
			}
			n.Cols = cols
		case scope.OpAgg:
			if n.Partial {
				n.Cols = copyCols(n.Inputs[0])
				continue
			}
			cols := append([]scope.Column(nil), n.GroupBy...)
			for _, a := range n.Aggs {
				// Preserve the previously computed agg output types.
				if c, ok := n.FindCol(a.Name); ok {
					cols = append(cols, c)
				} else {
					cols = append(cols, scope.Column{Name: a.Name, Type: scope.TypeDouble})
				}
			}
			n.Cols = cols
		case scope.OpUnion:
			if len(n.Inputs) > 0 {
				// Keep names, bound widths by the first input.
				first := n.Inputs[0]
				if len(first.Cols) == len(n.Cols) {
					for i := range n.Cols {
						n.Cols[i].Type = first.Cols[i].Type
					}
				}
			}
		}
	}
	// The row-count heuristics depend on NDVs of sources, untouched here.
	_ = math.Abs
}
