package optimizer

import (
	"fmt"

	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
)

// Options configures a compilation.
type Options struct {
	// Catalog is the rule catalog; nil uses the canonical 256-rule catalog.
	Catalog *rules.Catalog
	// Stats provides estimated base-table statistics.
	Stats StatsProvider
	// Tokens is the maximum degree of parallelism available to the job
	// (the SCOPE "token" allocation). Zero means DefaultTokens.
	Tokens int
	// Cache, when non-nil, memoizes the logical phase (rewrite fixpoint +
	// experimental-validity check) per (input graph, rule configuration).
	// Physical lowering always re-runs, so cached and uncached compilation
	// produce identical Results. Callers reusing a Cache across Optimize
	// calls must pass the same Stats for the same graph pointer (true for
	// job instances, whose stats are a function of their template and
	// date).
	Cache *CompileCache
}

// DefaultTokens is the default per-job parallelism budget.
const DefaultTokens = 200

// CompileFailure is returned when a rule configuration cannot produce a
// valid plan — the "recompilation failures" the paper counts in Table 3.
type CompileFailure struct {
	Reason string
}

func (e *CompileFailure) Error() string {
	return "optimizer: compilation failed: " + e.Reason
}

// IsCompileFailure reports whether err is a CompileFailure.
func IsCompileFailure(err error) bool {
	_, ok := err.(*CompileFailure)
	return ok
}

// Result is the output of a compilation: a physical plan, the estimated
// cost, and the rule signature recording every rule that fired.
type Result struct {
	Plan      *Plan
	Logical   *scope.Graph // post-rewrite logical DAG
	Signature rules.Signature
	EstCost   float64
}

// Optimize compiles the logical DAG under the given rule configuration.
// The input graph is never mutated: all rewrites run on a clone. When
// opts.Cache is set, the rewritten logical DAG is reused across calls
// with the same (graph, configuration); the physical lowering phase
// (implBuilder) treats logical nodes as strictly read-only — a guarantee
// exercised under -race by TestCachedLogicalGraphSharedLoweringRace —
// so a cached clone can be lowered concurrently by many goroutines.
func Optimize(g *scope.Graph, cfg rules.Config, opts Options) (*Result, error) {
	cat := opts.Catalog
	if cat == nil {
		cat = rules.NewCatalog()
	}
	// Required rules must be enabled to obtain valid plans.
	for _, r := range cat.Rules(rules.Required) {
		if !cfg.Enabled(r.ID) {
			return nil, &CompileFailure{Reason: fmt.Sprintf("required rule %s (R%03d) is disabled", r.Name, r.ID)}
		}
	}
	// Hinted compilations (single-rule deviations from the default) hit
	// deterministic "unsupported rule combination" rejections on a slice
	// of plan shapes, modelling the recompilation failures the paper
	// counts in Table 3 (13.9%-18% of flips).
	if flips := cfg.DiffFrom(cat.DefaultConfig()); len(flips) == 1 {
		h := g.TemplateHash() ^ (uint64(flips[0].RuleID+1) * 0x9e3779b97f4a7c15)
		if h%6 == 3 {
			r := cat.Rule(flips[0].RuleID)
			return nil, &CompileFailure{Reason: fmt.Sprintf("unsupported rule combination: flipping %s (R%03d) on this plan shape", r.Name, r.ID)}
		}
	}

	var work *scope.Graph
	var sig rules.Signature
	var err error
	if opts.Cache != nil {
		work, sig, err = opts.Cache.logical(g, cfg, cat, opts.Stats)
	} else {
		work, sig, err = rewriteLogical(g, cfg, cat, opts.Stats)
	}
	if err != nil {
		return nil, err
	}

	tokens := opts.Tokens
	if tokens <= 0 {
		tokens = DefaultTokens
	}
	env := &EstimationEnv{Stats: opts.Stats}
	ib := newImplBuilder(cfg, cat, &sig, opts.Stats, env, tokens)
	plan, err := ib.build(work)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: plan, Logical: work, Signature: sig, EstCost: plan.EstCost}, nil
}

// rewriteLogical runs the logical phase of a compilation: clone the input
// DAG, apply the enabled rewrites to fixpoint, and run the experimental
// validity check. The returned graph is final — nothing downstream (the
// implBuilder, the execution simulator, view building) mutates logical
// nodes, which is what makes the result cacheable and shareable.
func rewriteLogical(g *scope.Graph, cfg rules.Config, cat *rules.Catalog, stats StatsProvider) (*scope.Graph, rules.Signature, error) {
	var sig rules.Signature
	for _, r := range cat.Rules(rules.Required) {
		sig.Record(r.ID) // normalization always runs
	}
	env := &EstimationEnv{Stats: stats}
	work := g.Clone()
	rw := newRewriter(work, cfg, cat, &sig, stats, env)
	rw.run()
	if err := checkExperimentalValidity(work, cfg, cat, &sig); err != nil {
		return nil, sig, err
	}
	return work, sig, nil
}

// checkExperimentalValidity models the riskiness of off-by-default rules:
// experimental rewrites occasionally produce plans the engine rejects.
// The failure is deterministic per (rule, site) so that recompilation of
// the same job under the same configuration is reproducible.
func checkExperimentalValidity(g *scope.Graph, cfg rules.Config, cat *rules.Catalog, sig *rules.Signature) error {
	for _, r := range cat.Rules(rules.OffByDefault) {
		if !cfg.Enabled(r.ID) || !sig.Fired(r.ID) {
			continue
		}
		// A fired experimental rule fails validation on a deterministic
		// slice of plan shapes.
		h := g.TemplateHash() ^ (uint64(r.ID) * 0x9e3779b97f4a7c15)
		if h%23 == 5 {
			return &CompileFailure{Reason: fmt.Sprintf("experimental rule %s (R%03d) produced an invalid plan", r.Name, r.ID)}
		}
	}
	return nil
}

// ruleTable is the shared rule-selection helper: sibling variants of a
// kind partition operator sites by gate hash, so exactly one catalog rule
// is responsible for a given (kind, site) pair.
type ruleTable struct {
	byKind map[rules.Kind][]rules.Rule
	cfg    rules.Config
	sig    *rules.Signature
}

func newRuleTable(cat *rules.Catalog, cfg rules.Config, sig *rules.Signature) *ruleTable {
	byKind := make(map[rules.Kind][]rules.Rule)
	for _, r := range cat.All() {
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	return &ruleTable{byKind: byKind, cfg: cfg, sig: sig}
}

// pick returns the rule responsible for (kind, gate) and whether it is
// enabled.
func (t *ruleTable) pick(kind rules.Kind, gate uint64) (rules.Rule, bool) {
	rs := t.byKind[kind]
	if len(rs) == 0 {
		return rules.Rule{}, false
	}
	r := rs[gate%uint64(len(rs))]
	return r, t.cfg.Enabled(r.ID)
}

// fire records a firing.
func (t *ruleTable) fire(r rules.Rule) { t.sig.Record(r.ID) }

// Recardinalize recomputes per-node row counts of a physical plan under a
// different cardinality environment (typically the execution simulator's
// ground truth). Exchanges inherit their input's row count.
func (p *Plan) Recardinalize(env Environment, stats StatsProvider) map[*PhysNode]float64 {
	engine := newCardEngine(env, stats)
	out := make(map[*PhysNode]float64)
	for _, n := range p.Nodes() { // topological order: inputs first
		switch {
		case n.Logical != nil:
			out[n] = engine.rows(n.Logical)
		case len(n.Inputs) > 0:
			out[n] = out[n.Inputs[0]]
		default:
			out[n] = 1
		}
	}
	return out
}
