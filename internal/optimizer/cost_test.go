package optimizer

import (
	"testing"

	"qoadvisor/internal/scope"
)

func predOf(t *testing.T, pred string) scope.Expr {
	t.Helper()
	src := `x = SELECT a FROM t WHERE ` + pred + `; OUTPUT x TO "o";`
	s, err := scope.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.Statements[0].(*scope.SelectStmt)
	return sel.Where
}

var costCols = []scope.Column{
	{Name: "a", Type: scope.TypeInt, Source: "t:a"},
	{Name: "b", Type: scope.TypeInt, Source: "t:b"},
}

var costStats = MapStats{"t": {Rows: 1e6, NDV: map[string]float64{"a": 100, "b": 1e4}}}

func TestPredSelectivityEquality(t *testing.T) {
	// Equality on a column with NDV 100 -> 1/100.
	got := predSelectivity(predOf(t, "a == 5"), costCols, 1e6, costStats)
	if got != 0.01 {
		t.Errorf("selectivity = %v, want 0.01", got)
	}
	// Equality on the higher-NDV column is more selective.
	gotB := predSelectivity(predOf(t, "b == 5"), costCols, 1e6, costStats)
	if gotB >= got {
		t.Errorf("b (%v) should be more selective than a (%v)", gotB, got)
	}
}

func TestPredSelectivityRangeAndNegation(t *testing.T) {
	rng := predSelectivity(predOf(t, "a > 5"), costCols, 1e6, costStats)
	if rng != selRange {
		t.Errorf("range selectivity = %v, want %v", rng, selRange)
	}
	neq := predSelectivity(predOf(t, "a != 5"), costCols, 1e6, costStats)
	if neq != selInequality {
		t.Errorf("inequality selectivity = %v", neq)
	}
	not := predSelectivity(predOf(t, "NOT a > 5"), costCols, 1e6, costStats)
	if not != 1-selRange {
		t.Errorf("NOT range = %v, want %v", not, 1-selRange)
	}
}

func TestPredSelectivityConjunctionsAndDisjunctions(t *testing.T) {
	and := predSelectivity(predOf(t, "a > 5 AND b > 5"), costCols, 1e6, costStats)
	if and != selRange*selRange {
		t.Errorf("AND = %v, want %v", and, selRange*selRange)
	}
	or := predSelectivity(predOf(t, "a > 5 OR b > 5"), costCols, 1e6, costStats)
	want := selRange + selRange - selRange*selRange
	if or != want {
		t.Errorf("OR = %v, want %v", or, want)
	}
	if or <= and {
		t.Error("OR must be less selective than AND")
	}
}

func TestNdvCappedByRows(t *testing.T) {
	col := scope.Column{Name: "b", Source: "t:b"}
	// NDV 1e4 but only 50 rows: capped at 50.
	if got := ndvOf(costStats, col, 50); got != 50 {
		t.Errorf("ndv = %v, want 50", got)
	}
	// Unknown source: rows/10 heuristic.
	unknown := scope.Column{Name: "z"}
	if got := ndvOf(costStats, unknown, 1000); got != 100 {
		t.Errorf("computed-column ndv = %v, want 100", got)
	}
}

func TestCardEngineFilterConjunctStability(t *testing.T) {
	// A filter with pred (A AND B) must produce the same cardinality as
	// two stacked filters A, B — the invariant that keeps merge/split
	// rewrites cardinality-neutral.
	g1, err := scope.CompileScript(`
t = EXTRACT a:int, b:int FROM "t";
x = SELECT a FROM t WHERE a > 5 AND b == 7;
OUTPUT x TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	env := &EstimationEnv{Stats: costStats}
	ce := newCardEngine(env, costStats)
	var filterRows float64
	for _, n := range g1.Nodes() {
		if n.Kind == scope.OpFilter {
			filterRows = ce.rows(n)
		}
	}
	// Manually: 0.3 (range) * 1/1e4 (eq on b) = 3e-5, clamped to the
	// 1e-4 selectivity floor -> 100 rows.
	want := 1e6 * 0.0001
	if filterRows < want*0.99 || filterRows > want*1.01 {
		t.Errorf("filter rows = %v, want %v", filterRows, want)
	}
}

func TestCardEngineJoinEstimate(t *testing.T) {
	g, err := scope.CompileScript(`
l = EXTRACT k:long, v:int FROM "l";
r = EXTRACT k:long, w:int FROM "r";
j = SELECT a.v, b.w FROM l AS a JOIN r AS b ON a.k == b.k;
OUTPUT j TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	st := MapStats{
		"l": {Rows: 1e6, NDV: map[string]float64{"k": 1e5}},
		"r": {Rows: 1e4, NDV: map[string]float64{"k": 1e4}},
	}
	ce := newCardEngine(&EstimationEnv{Stats: st}, st)
	for _, n := range g.Nodes() {
		if n.Kind == scope.OpJoin {
			got := ce.rows(n)
			// |L||R| / max(ndv) = 1e6*1e4/1e5 = 1e5.
			if got < 0.99e5 || got > 1.01e5 {
				t.Errorf("join estimate = %v, want 1e5", got)
			}
		}
	}
}

func TestCardEngineTopAndUnion(t *testing.T) {
	g, err := scope.CompileScript(`
a = EXTRACT x:int FROM "a";
b = EXTRACT x:int FROM "b";
u = a UNION ALL b;
t5 = SELECT * FROM u ORDER BY x TOP 5;
OUTPUT t5 TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	st := MapStats{
		"a": {Rows: 1000, NDV: map[string]float64{"x": 100}},
		"b": {Rows: 2000, NDV: map[string]float64{"x": 100}},
	}
	ce := newCardEngine(&EstimationEnv{Stats: st}, st)
	for _, n := range g.Nodes() {
		switch n.Kind {
		case scope.OpUnion:
			if got := ce.rows(n); got != 3000 {
				t.Errorf("union rows = %v, want 3000", got)
			}
		case scope.OpTop:
			if got := ce.rows(n); got != 5 {
				t.Errorf("top rows = %v, want 5", got)
			}
		}
	}
}

func TestHasEqualityConjunct(t *testing.T) {
	if !hasEqualityConjunct(predOf(t, "a == 1 AND b > 2")) {
		t.Error("should find the equality conjunct")
	}
	if hasEqualityConjunct(predOf(t, "a > 1 AND b < 2")) {
		t.Error("no equality conjunct present")
	}
}

func TestTrueEnvOverridesHeuristic(t *testing.T) {
	g, err := scope.CompileScript(`
t = EXTRACT a:int, b:int FROM "t";
x = SELECT a FROM t WHERE a > 5;
OUTPUT x TO "o";`)
	if err != nil {
		t.Fatal(err)
	}
	truth := &trueEnv{
		rows: map[string]float64{"t": 1e6},
		sels: map[string]float64{"filter:(a > 5)": 0.9},
	}
	ce := newCardEngine(truth, costStats)
	for _, n := range g.Nodes() {
		if n.Kind == scope.OpFilter || (n.Kind == scope.OpScan && n.Pred != nil) {
			got := ce.rows(n)
			if got < 0.89e6 || got > 0.91e6 {
				t.Errorf("true selectivity not applied: rows = %v, want 9e5", got)
			}
		}
	}
}

func TestJoinKeyNDVNoEquiCond(t *testing.T) {
	cond := predOf(t, "a > b")
	ndv := joinKeyNDV(cond, costCols, costCols, 1e6, 1e6, costStats)
	if ndv != 1 {
		t.Errorf("non-equi join ndv = %v, want 1 (cross-join-like)", ndv)
	}
}
