package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestExpositionCountersAndGauges(t *testing.T) {
	e := NewExposition()
	e.Counter("qo_requests_total", "Total requests.", L("route", "/v2/rank"), 42)
	e.Counter("qo_requests_total", "Total requests.", L("route", "/v1/rank"), 7)
	e.Gauge("qo_queue_depth", "Queue depth.", nil, 3)
	var b strings.Builder
	if _, err := e.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		"# HELP qo_requests_total Total requests.",
		"# TYPE qo_requests_total counter",
		`qo_requests_total{route="/v2/rank"} 42`,
		`qo_requests_total{route="/v1/rank"} 7`,
		"# TYPE qo_queue_depth gauge",
		"qo_queue_depth 3",
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Errorf("missing line %q in:\n%s", l, out)
		}
	}
	// One HELP/TYPE pair per family even with two series.
	if strings.Count(out, "# TYPE qo_requests_total") != 1 {
		t.Errorf("TYPE line repeated:\n%s", out)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	e := NewExposition()
	e.Gauge("qo_g", "help", L("path", `a"b\c`+"\n"), 1)
	var b strings.Builder
	e.WriteTo(&b)
	want := `qo_g{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaping: got %q, want to contain %q", b.String(), want)
	}
}

func TestExpositionHistogram(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	h.Observe(time.Duration(1) << 55) // clamps into the unbounded tail bucket
	e := NewExposition()
	e.Histogram("qo_latency_seconds", "Latency.", L("route", "/v2/rank"), h.Snapshot())
	var b strings.Builder
	e.WriteTo(&b)
	out := b.String()

	if !strings.Contains(out, "# TYPE qo_latency_seconds histogram") {
		t.Fatalf("missing TYPE histogram:\n%s", out)
	}
	// Buckets must be cumulative and monotone, +Inf must equal _count,
	// and _count must be the observation count.
	var last float64
	var infSeen bool
	var infVal, countVal float64
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "qo_latency_seconds_bucket"):
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < last {
				t.Fatalf("bucket counts not monotone at %q (prev %v)", line, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				infSeen, infVal = true, v
			}
		case strings.HasPrefix(line, "qo_latency_seconds_count"):
			countVal, _ = strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		}
	}
	if !infSeen {
		t.Fatalf("no +Inf bucket:\n%s", out)
	}
	if infVal != countVal || countVal != 3 {
		t.Fatalf("+Inf=%v count=%v, want both 3", infVal, countVal)
	}
	if !strings.Contains(out, "qo_latency_seconds_sum ") && !strings.Contains(out, "qo_latency_seconds_sum{") {
		t.Fatalf("missing _sum:\n%s", out)
	}
}

func TestExpositionSortSeries(t *testing.T) {
	e := NewExposition()
	e.Counter("qo_c_total", "h", L("route", "/z"), 1)
	e.Counter("qo_c_total", "h", L("route", "/a"), 2)
	e.SortSeries()
	var b strings.Builder
	e.WriteTo(&b)
	out := b.String()
	if strings.Index(out, `route="/a"`) > strings.Index(out, `route="/z"`) {
		t.Errorf("series not sorted:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{3, "3"},
		{0.25, "0.25"},
		{1e21, "1e+21"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
