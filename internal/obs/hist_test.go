package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty histogram: count=%d sum=%d", s.Count, s.Sum)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)                // bucket 1 ([1,2))
	h.Observe(1023)             // bucket 10
	h.Observe(1024)             // bucket 11
	h.Observe(-5 * time.Second) // clamps to 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (zero + clamped negative)", s.Buckets[0])
	}
	if s.Buckets[1] != 1 || s.Buckets[10] != 1 || s.Buckets[11] != 1 {
		t.Fatalf("buckets = %v", s.Buckets[:12])
	}
}

func TestHistogramClampsHugeValues(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(1) << 55) // past every bounded bucket
	s := h.Snapshot()
	if s.Buckets[NumHistBuckets-1] != 1 {
		t.Fatalf("huge value not clamped to last bucket: %v", s.Buckets)
	}
	if q := s.Quantile(0.5); q == 0 {
		t.Fatal("clamped quantile should still be non-zero")
	}
}

// TestHistogramQuantilesUniform pins percentile estimates against a
// known uniform distribution: log₂ buckets bound the relative error
// at one bucket width (2x worst-case); uniform draws over [1ms, 100ms]
// must land well within that.
func TestHistogramQuantilesUniform(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	lo, hi := float64(time.Millisecond), float64(100*time.Millisecond)
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(lo + rng.Float64()*(hi-lo)))
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, lo + 0.50*(hi-lo)},
		{0.90, lo + 0.90*(hi-lo)},
		{0.99, lo + 0.99*(hi-lo)},
		{0.999, lo + 0.999*(hi-lo)},
	} {
		got := float64(s.Quantile(tc.q))
		// One log₂ bucket spans a doubling: the estimate must be within
		// [want/2, want*2]; the interpolated estimate is usually far
		// closer but the hard bound is what the bucketing guarantees.
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%.3f = %v, want within 2x of %v", tc.q, time.Duration(got), time.Duration(tc.want))
		}
	}
}

// TestHistogramQuantilesPointMass: all observations identical — every
// quantile must land inside that value's bucket.
func TestHistogramQuantilesPointMass(t *testing.T) {
	var h Histogram
	v := 5 * time.Millisecond // bucket [2^22, 2^23) ns = [4.19ms, 8.39ms)
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		got := s.Quantile(q)
		if got < time.Duration(1)<<22 || got > time.Duration(1)<<23 {
			t.Errorf("q%.3f = %v, want inside the [4.19ms, 8.39ms) bucket", q, got)
		}
	}
	if mean := s.Mean(); mean != v {
		t.Errorf("mean = %v, want %v", mean, v)
	}
}

// TestHistogramQuantileTwoModes pins tail behavior: 99% fast mode,
// 1% slow mode — p50 must report the fast mode, p999 the slow one.
func TestHistogramQuantileTwoModes(t *testing.T) {
	var h Histogram
	for i := 0; i < 9900; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want ~100us", p50)
	}
	if p999 := s.Quantile(0.999); p999 < 10*time.Millisecond {
		t.Errorf("p999 = %v, want ~50ms", p999)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	if sa.Sum != uint64(3*time.Millisecond)+uint64(time.Second) {
		t.Fatalf("merged sum = %d", sa.Sum)
	}
	if q := sa.Quantile(1.0); q < 500*time.Millisecond {
		t.Fatalf("merged max quantile = %v, want ~1s", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this pins the lock-free recording, and the final
// count must be exact (atomic adds lose nothing).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Intn(1e9)))
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketSum uint64
	for _, c := range s.Buckets {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += time.Nanosecond
		}
	})
}

// BenchmarkHistogramObserveParallel hammers one histogram from every
// core with durations that vary only in their low bits — the realistic
// shape of measured latencies, and the entropy the stripe selection
// relies on. (Bit-identical durations from every core would degenerate
// to a single contended stripe, i.e. the pre-striping behaviour.)
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(140)
		for pb.Next() {
			h.Observe(d)
			d = 140 + (d+7)&63
		}
	})
}
