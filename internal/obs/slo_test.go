package obs

import (
	"math"
	"testing"
	"time"
)

func TestCountBelow(t *testing.T) {
	var h Histogram
	// 10 samples at 100µs, 10 at 10ms.
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Microsecond)
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.CountBelow(time.Millisecond); math.Abs(got-10) > 1e-9 {
		t.Fatalf("CountBelow(1ms) = %v, want 10 (only the fast half)", got)
	}
	if got := s.CountBelow(time.Second); math.Abs(got-20) > 1e-9 {
		t.Fatalf("CountBelow(1s) = %v, want all 20", got)
	}
	if got := s.CountBelow(0); got != 0 {
		t.Fatalf("CountBelow(0) = %v, want 0 (no zero-duration samples)", got)
	}
	// Threshold inside a populated bucket interpolates to a fraction.
	mid := s.CountBelow(12 * time.Millisecond)
	if mid <= 10 || mid >= 20 {
		t.Fatalf("CountBelow inside covering bucket = %v, want between 10 and 20", mid)
	}
}

func TestCountBelowZeroBucket(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	if got := h.Snapshot().CountBelow(0); got != 2 {
		t.Fatalf("zero-duration samples must count at threshold 0, got %v", got)
	}
}

func TestSnapshotFromPartsRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	s := h.Snapshot()
	back := SnapshotFromParts(s.Sum, s.Buckets[:])
	if back != s {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
	// Oversized input collapses into the tail bucket instead of dropping.
	long := make([]uint64, NumHistBuckets+3)
	long[NumHistBuckets+2] = 7
	long[3] = 2
	got := SnapshotFromParts(0, long)
	if got.Count != 9 || got.Buckets[NumHistBuckets-1] != 7 || got.Buckets[3] != 2 {
		t.Fatalf("oversized buckets mishandled: %+v", got)
	}
}

// TestSLOTrackerWindows drives a latency objective through a healthy
// period and then a violating one, and checks each window's burn rate
// reflects the era it covers.
func TestSLOTrackerWindows(t *testing.T) {
	var h Histogram
	tr := NewSLOTracker(time.Second, 10*time.Second)
	tr.SetMinSamplePeriod(0)
	tr.Add(Objective{
		Name:      "rank_latency",
		Kind:      SLOLatency,
		Target:    0.9,
		Threshold: time.Millisecond,
		Source:    LatencySource(&h, time.Millisecond),
	})

	now := time.Unix(1000, 0)
	// 10 seconds of healthy traffic: 100 fast ops per tick.
	for i := 0; i < 10; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(100 * time.Microsecond)
		}
		tr.Tick(now)
		now = now.Add(time.Second)
	}
	rep := tr.Report(now)
	if len(rep) != 1 || len(rep[0].Windows) != 2 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	for _, w := range rep[0].Windows {
		if w.Compliance != 1 || w.BurnRate != 0 || w.BudgetRemaining != 1 {
			t.Fatalf("healthy era should be fully compliant, got %+v", w)
		}
	}

	// One second of total failure: 100 slow ops.
	for j := 0; j < 100; j++ {
		h.Observe(time.Second)
	}
	tr.Tick(now)
	rep = tr.Report(now)
	short, long := rep[0].Windows[0], rep[0].Windows[1]
	if short.Window != time.Second || long.Window != 10*time.Second {
		t.Fatalf("windows not ascending: %+v", rep[0].Windows)
	}
	// The short window covers only the failing era: compliance 0, burn
	// rate 1/0.1 = 10.
	if math.Abs(short.Compliance) > 1e-9 || math.Abs(short.BurnRate-10) > 1e-6 {
		t.Fatalf("short window should see pure failure (burn 10): %+v", short)
	}
	if short.BudgetRemaining >= 0 {
		t.Fatalf("short window budget should be overspent, got %+v", short)
	}
	// The long window mixes 900 good into 1000 total: compliance 0.9,
	// burn rate 1.0 — exactly at budget.
	if math.Abs(long.Compliance-0.9) > 1e-3 || math.Abs(long.BurnRate-1) > 1e-2 {
		t.Fatalf("long window should dilute to burn ~1: %+v", long)
	}
}

func TestSLOTrackerAvailabilityAndPruning(t *testing.T) {
	good, total := 0.0, 0.0
	tr := NewSLOTracker(time.Second)
	tr.SetMinSamplePeriod(0)
	tr.Add(Objective{
		Name:   "availability",
		Kind:   SLOAvailability,
		Target: 0.99,
		Source: func() (float64, float64) { return good, total },
	})
	now := time.Unix(2000, 0)
	for i := 0; i < 100; i++ {
		good += 99
		total += 100
		tr.Tick(now)
		now = now.Add(100 * time.Millisecond)
	}
	// Ring stays bounded near window/period plus the far baseline.
	tr.mu.Lock()
	n := len(tr.samples)
	tr.mu.Unlock()
	if n > 13 {
		t.Fatalf("sample ring not pruned: %d samples", n)
	}
	rep := tr.Report(now)
	w := rep[0].Windows[0]
	if math.Abs(w.Compliance-0.99) > 1e-6 || math.Abs(w.BurnRate-1) > 1e-3 {
		t.Fatalf("steady 1%% error rate at 1%% budget should burn at 1.0: %+v", w)
	}
	// No traffic at all: compliance 1 by definition.
	good, total = 0, 0 // counter reset
	rep = tr.Report(now)
	if rep[0].Windows[0].Compliance != 1 {
		t.Fatalf("reset counters with no traffic should report compliant: %+v", rep[0].Windows[0])
	}
}

func TestFormatWindow(t *testing.T) {
	cases := map[time.Duration]string{
		30 * time.Second: "30s",
		time.Minute:      "1m",
		5 * time.Minute:  "5m",
		90 * time.Minute: "1h30m",
		time.Hour:        "1h",
	}
	for d, want := range cases {
		if got := FormatWindow(d); got != want {
			t.Errorf("FormatWindow(%v) = %q, want %q", d, got, want)
		}
	}
}
