// Package obs is QO-Advisor's stdlib-only observability toolkit:
// lock-free log₂-bucketed latency histograms with percentile
// estimation, a hand-rolled Prometheus text-format exposition builder,
// a request-scoped stage tracer emitting Chrome-trace/perfetto JSON,
// a leveled key=value logger, and build-info introspection. Every
// serving layer (HTTP middleware, WAL group commit, reward ingestion,
// checkpointing, replication tailing) records into these primitives;
// internal/serve assembles them into GET /metrics and /v2/stats.
//
// The histogram is the load-bearing piece: recording is two atomic
// adds into a striped fixed bucket array (no locks, no allocations),
// so it can sit on the rank hot path, and snapshots are mergeable so
// per-shard or per-stage histograms can aggregate into one exposition
// series.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistBuckets is the fixed bucket count of every Histogram. Bucket
// i holds durations whose nanosecond value has bit-length i — i.e.
// [2^(i-1), 2^i) ns — so bucket bounds double: ~1ns resolution at the
// bottom, bucket 41 ending at 2^41 ns ≈ 36.6 minutes. Anything longer
// clamps into the last bucket (exposed as +Inf in Prometheus form).
const NumHistBuckets = 42

// histStripes is the number of independently-updated copies of the
// counters inside a Histogram. A single shared counter array turns
// into a cache-line ping-pong under concurrent recording (every core
// pays the full remote-acquisition latency per atomic add, ~100ns+ on
// the rank hot path), so observers spread across stripes and Snapshot
// folds them back together. Must be a power of two.
const histStripes = 8

type histStripe struct {
	sum     atomic.Uint64 // total nanoseconds
	buckets [NumHistBuckets]atomic.Uint64
	_       [40]byte // round to a cache-line multiple so stripes don't share lines
}

// Histogram is a lock-free latency histogram: log₂ buckets over
// nanosecond durations, atomic counters, constant-time recording.
// The zero value is ready to use. Safe for concurrent use.
//
// Two deliberate structural choices keep the hot path cheap:
//
//   - No separate count field: the observation count is the sum of the
//     buckets, computed at snapshot time, so Observe is two atomic adds
//     and a snapshot's count always agrees with its buckets.
//   - Counters are striped (see histStripes), with the stripe chosen
//     from the low bits of the observed duration itself. At nanosecond
//     clock resolution those bits are effectively uniform for real
//     latencies, so concurrent observers scatter across stripes without
//     spending a single extra instruction on goroutine-local state.
type Histogram struct {
	stripes [histStripes]histStripe
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns uint64) int {
	i := bits.Len64(ns)
	if i >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return i
}

// BucketUpperNanos returns bucket i's exclusive upper bound in
// nanoseconds. The last bucket is unbounded (+Inf) and returns 0.
func BucketUpperNanos(i int) uint64 {
	if i >= NumHistBuckets-1 {
		return 0
	}
	return uint64(1) << i
}

// Observe records one duration. Negative durations clamp to zero.
// Two atomic adds into a duration-selected stripe — no locks, no
// allocations — so it is safe on hot paths (the ≤3%-overhead budget
// of the rank path).
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	s := &h.stripes[ns&(histStripes-1)]
	s.sum.Add(ns)
	s.buckets[bucketIndex(ns)].Add(1)
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Snapshot folds the stripes into an immutable, mergeable view.
// Counters are read individually (not under a lock), so a snapshot
// taken during concurrent recording may be off by in-flight
// observations — fine for monitoring. Count is derived from the
// bucket sums, so it always agrees with the buckets; only Sum can
// lag by races in flight.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for j := range h.stripes {
		st := &h.stripes[j]
		s.Sum += st.sum.Load()
		for i := range st.buckets {
			s.Buckets[i] += st.buckets[i].Load()
		}
	}
	for _, c := range s.Buckets {
		s.Count += c
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to merge
// and query.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // nanoseconds
	Buckets [NumHistBuckets]uint64
}

// Merge accumulates other into s (for aggregating shard- or
// stage-level histograms into one series).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// SnapshotFromParts rebuilds a HistSnapshot from its raw wire parts
// (sum in nanoseconds plus per-bucket counts) — the inverse of putting
// a snapshot on the wire for fleet aggregation. Count is derived from
// the buckets, matching Snapshot's invariant. Buckets beyond
// NumHistBuckets collapse into the unbounded tail bucket; shorter
// slices leave the remainder zero.
func SnapshotFromParts(sumNanos uint64, buckets []uint64) HistSnapshot {
	s := HistSnapshot{Sum: sumNanos}
	for i, c := range buckets {
		if i >= NumHistBuckets {
			i = NumHistBuckets - 1
		}
		s.Buckets[i] += c
	}
	for _, c := range s.Buckets {
		s.Count += c
	}
	return s
}

// CountBelow estimates how many observations were at or below d, by
// linear interpolation inside the bucket containing d (the CDF
// counterpart of Quantile). Samples in the unbounded tail bucket are
// never counted — their true values are unknowable — so a threshold
// past the last bounded bucket undercounts rather than lies.
func (s HistSnapshot) CountBelow(d time.Duration) float64 {
	if s.Count == 0 || d < 0 {
		return 0
	}
	ns := uint64(d)
	idx := bucketIndex(ns)
	below := float64(0)
	for i := 0; i < idx; i++ {
		below += float64(s.Buckets[i])
	}
	if idx == NumHistBuckets-1 {
		return below
	}
	if idx == 0 {
		// Bucket 0 holds only zero-duration samples; all are <= d.
		return below + float64(s.Buckets[0])
	}
	lower := float64(uint64(1) << (idx - 1))
	upper := float64(uint64(1) << idx)
	frac := (float64(ns) - lower) / (upper - lower)
	return below + frac*float64(s.Buckets[idx])
}

// SumSeconds returns the total observed time in seconds.
func (s HistSnapshot) SumSeconds() float64 { return float64(s.Sum) / float64(time.Second) }

// Mean returns the average observed duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the covering bucket: find the bucket where the
// cumulative count crosses q·Count, then interpolate between its
// bounds by the fraction of the bucket's population below the target
// rank. Log₂ buckets bound the relative error at 2x worst-case (one
// bucket spans a doubling); in practice estimates land well inside
// that because traffic clusters. Returns 0 when the histogram is
// empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lower := float64(0)
			if i > 0 {
				lower = float64(uint64(1) << (i - 1))
			}
			upper := float64(uint64(1) << i)
			if i == NumHistBuckets-1 {
				// Unbounded tail bucket: report its lower bound (we cannot
				// know how far past it the clamped samples went).
				upper = lower
			}
			frac := (target - float64(cum)) / float64(c)
			return time.Duration(math.Round(lower + frac*(upper-lower)))
		}
		cum += c
	}
	// Unreachable for snapshots (Count is derived from the buckets),
	// but hand-built HistSnapshot values may disagree; report the
	// highest populated bound.
	for i := NumHistBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			return time.Duration(uint64(1) << i)
		}
	}
	return 0
}
