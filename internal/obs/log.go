package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled key=value logging. One line per event:
//
//	ts=2026-08-08T12:00:00.123Z level=info msg="checkpoint complete" bytes=1234 lsn=42
//
// grep-able by key, machine-parseable (logfmt), and cheap: a level
// check is one atomic load, and a suppressed line formats nothing.

// Level orders log severities.
type Level int32

// Levels, in ascending severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the flag/wire form.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel parses the flag form ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger writes leveled key=value lines. A nil *Logger is valid and
// silent, so optional logging hooks can be threaded without guards.
// Safe for concurrent use.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
}

// NewLogger builds a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum emitted level at runtime.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether lines at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.min.Load()
}

// Debug logs at debug level. kv is alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level. kv is alternating key, value pairs.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level. kv is alternating key, value pairs.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level. kv is alternating key, value pairs.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(logValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(logValue(kv[i+1]))
	}
	if len(kv)%2 != 0 {
		// A dangling key is a programming error; surface it rather than
		// silently dropping the value slot.
		b.WriteString(" !BADKEY=")
		b.WriteString(logValue(kv[len(kv)-1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// logValue renders one value in logfmt form: bare when it has no
// spaces or quotes, strconv-quoted otherwise.
func logValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case error:
		s = t.Error()
	case time.Duration:
		s = t.String()
	case fmt.Stringer:
		s = t.String()
	default:
		s = fmt.Sprint(v)
	}
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
