package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func finishOne(r *FlightRecorder, t *Tracer, route string, dur time.Duration, status int) {
	tr := r.Begin(t)
	start := time.Now()
	tr.Stage(1, "stage_a", start, dur/2)
	tr.FinishRequest(route, start, dur, status)
}

func TestFlightRetainsSlowErroredAndSampled(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{Threshold: 10 * time.Millisecond})

	finishOne(r, nil, "/fast", time.Millisecond, 200)        // unretained
	finishOne(r, nil, "/slow", 20*time.Millisecond, 200)     // slow
	finishOne(r, nil, "/boom", time.Millisecond, 500)        // error
	finishOne(r, nil, "/slowboom", 20*time.Millisecond, 503) // error wins over slow
	tracer := NewTracer(&strings.Builder{}, 1)               // head-samples every request
	finishOne(r, tracer, "/sampled", time.Millisecond, 200)  // sampled
	finishOne(r, tracer, "/slow2", 20*time.Millisecond, 200) // slow wins over sampled
	got := r.Query("", 0, 0)
	if len(got) != 5 {
		t.Fatalf("retained %d traces, want 5", len(got))
	}
	reasons := map[string]string{}
	for _, rt := range got {
		reasons[rt.Route] = rt.Reason
	}
	want := map[string]string{
		"/slow": RetainSlow, "/boom": RetainError, "/slowboom": RetainError,
		"/sampled": RetainSampled, "/slow2": RetainSlow,
	}
	for route, reason := range want {
		if reasons[route] != reason {
			t.Errorf("route %s retained as %q, want %q", route, reasons[route], reason)
		}
	}
	st := r.Stats()
	if st.RetainedSlow != 2 || st.RetainedError != 2 || st.RetainedSampled != 1 {
		t.Errorf("stats = %+v, want 2 slow / 2 error / 1 sampled", st)
	}
}

func TestFlightRouteThresholdOverrides(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{
		Threshold:       time.Hour,
		RouteThresholds: map[string]time.Duration{"/rank": time.Millisecond, "/stream": -1},
	})
	finishOne(r, nil, "/rank", 5*time.Millisecond, 200)  // over the route override
	finishOne(r, nil, "/other", 5*time.Millisecond, 200) // under the default
	finishOne(r, nil, "/stream", 10*time.Minute, 200)    // slow retention disabled
	if got := r.Query("", 0, 0); len(got) != 1 || got[0].Route != "/rank" {
		t.Fatalf("retained %v, want exactly /rank", got)
	}
}

func TestFlightRingBoundsAndEvicts(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{Capacity: 4, Threshold: time.Millisecond})
	for i := 0; i < 10; i++ {
		finishOne(r, nil, "/slow", 2*time.Millisecond, 200)
	}
	got := r.Query("", 0, 0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(got))
	}
	// Newest first: sequence numbers 10,9,8,7.
	for i, rt := range got {
		if want := uint64(10 - i); rt.Seq != want {
			t.Errorf("Query()[%d].Seq = %d, want %d", i, rt.Seq, want)
		}
	}
	if st := r.Stats(); st.Evicted != 6 {
		t.Errorf("Evicted = %d, want 6", st.Evicted)
	}
}

func TestFlightQueryFilters(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{Threshold: time.Millisecond})
	finishOne(r, nil, "/a", 5*time.Millisecond, 200)
	finishOne(r, nil, "/b", 50*time.Millisecond, 200)
	finishOne(r, nil, "/a", 100*time.Millisecond, 200)
	if got := r.Query("/a", 0, 0); len(got) != 2 {
		t.Errorf("route filter: got %d, want 2", len(got))
	}
	if got := r.Query("", 40*time.Millisecond, 0); len(got) != 2 {
		t.Errorf("minDur filter: got %d, want 2", len(got))
	}
	if got := r.Query("", 0, 1); len(got) != 1 || got[0].Route != "/a" || got[0].Duration != 100*time.Millisecond {
		t.Errorf("limit: got %v, want the newest /a", got)
	}
}

func TestFlightRetainedTraceCarriesSpans(t *testing.T) {
	r := NewFlightRecorder(FlightConfig{Threshold: time.Millisecond})
	tr := r.Begin(nil)
	tr.SetRequestID("req-42")
	start := time.Now()
	tr.Stage(1, "rank_hint_lookup", start, 10*time.Microsecond)
	tr.Stage(1, "rank_bandit", start, 20*time.Microsecond)
	tr.FinishRequest("/v2/rank", start, 5*time.Millisecond, 200)
	got := r.Query("/v2/rank", 0, 1)
	if len(got) != 1 {
		t.Fatal("trace not retained")
	}
	rt := got[0]
	if rt.RequestID != "req-42" {
		t.Errorf("RequestID = %q", rt.RequestID)
	}
	if len(rt.Events) != 3 {
		t.Fatalf("retained %d events, want 2 stages + 1 request", len(rt.Events))
	}
	last := rt.Events[2]
	if last.Cat != "request" || last.Name != "/v2/rank" || last.Duration != 5*time.Millisecond {
		t.Errorf("request event = %+v", last)
	}
}

// TestFlightUnretainedPathAllocs pins the tentpole's fast-path
// guarantee: a request that is neither slow, errored, nor head-sampled
// must complete the Begin → Stage → FinishRequest cycle without
// allocating (the span buffer pool absorbs it).
func TestFlightUnretainedPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the 0-alloc bound holds only in normal builds")
	}
	r := NewFlightRecorder(FlightConfig{Threshold: time.Hour})
	// Warm the pool and the events slice capacity.
	for i := 0; i < 16; i++ {
		finishOne(r, nil, "/fast", time.Microsecond, 200)
	}
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		tr := r.Begin(nil)
		tr.Stage(1, "stage_a", start, time.Microsecond)
		tr.Stage(1, "stage_b", start, time.Microsecond)
		tr.FinishRequest("/fast", start, 2*time.Microsecond, 200)
	})
	if allocs > 0 {
		t.Errorf("unretained path allocates %.1f per request, want 0", allocs)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var r *FlightRecorder
	if got := r.Query("", 0, 0); got != nil {
		t.Errorf("nil Query = %v", got)
	}
	if st := r.Stats(); st.Capacity != 0 {
		t.Errorf("nil Stats = %+v", st)
	}
	tr := r.Begin(nil) // degrades to nil-tracer head sampling
	if tr != nil {
		t.Fatal("nil recorder + nil tracer must yield a nil trace")
	}
	tr.Finish("r", time.Now(), time.Millisecond) // nil-safe
}

// TestFlightHeadSampledExportStillWritten pins composition: with a
// recorder attached, head-elected traces still reach the tracer's
// Chrome-trace output (the -trace-out export arm).
func TestFlightHeadSampledExportStillWritten(t *testing.T) {
	var b strings.Builder
	tracer := NewTracer(&b, 2) // every 2nd request elected
	r := NewFlightRecorder(FlightConfig{Threshold: time.Hour})
	for i := 0; i < 4; i++ {
		finishOne(r, tracer, "/fast", time.Microsecond, 200)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, `"cat":"request"`); got != 2 {
		t.Errorf("exported %d request events, want 2 (1-in-2 head sampling): %s", got, out)
	}
	if st := r.Stats(); st.RetainedSampled != 2 {
		t.Errorf("RetainedSampled = %d, want 2", st.RetainedSampled)
	}
}

// failAfterWriter fails every write after the first n bytes.
type failAfterWriter struct {
	n       int
	written int
}

var errWriterFull = errors.New("disk full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errWriterFull
	}
	w.written += len(p)
	return len(p), nil
}

// TestTracerLatchesWriteError is the satellite regression test: emit
// used to drop io.WriteString's error on the floor; now the first
// failure is latched, counted, and surfaced from Close.
func TestTracerLatchesWriteError(t *testing.T) {
	w := &failAfterWriter{n: 64}
	tracer := NewTracer(w, 1)
	for i := 0; i < 8; i++ {
		tr := tracer.Sample()
		tr.Finish("/v2/rank", time.Now(), time.Millisecond)
	}
	if got := tracer.WriteErrors(); got == 0 {
		t.Fatal("WriteErrors = 0 after failing writes")
	}
	if err := tracer.Close(); !errors.Is(err, errWriterFull) {
		t.Fatalf("Close = %v, want the latched write error", err)
	}
	// Close is idempotent and keeps surfacing the latched error.
	if err := tracer.Close(); !errors.Is(err, errWriterFull) {
		t.Fatalf("second Close = %v, want the latched write error", err)
	}
}

func TestTracerCloseErrorLatched(t *testing.T) {
	// Writer that accepts events but fails on the closing terminator.
	w := &failAfterWriter{n: 200}
	tracer := NewTracer(w, 1)
	tr := tracer.Sample()
	tr.Finish("/v2/rank", time.Now(), time.Millisecond)
	w.n = w.written // next write (the "\n]\n" terminator) fails
	if err := tracer.Close(); !errors.Is(err, errWriterFull) {
		t.Fatalf("Close = %v, want terminator write error", err)
	}
	if got := tracer.WriteErrors(); got != 1 {
		t.Errorf("WriteErrors = %d, want 1", got)
	}
}
