package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies a running binary: module path and version, Go
// toolchain, and — when the binary was built inside a git checkout —
// the VCS revision, commit time, and dirty flag. A running node with
// no version surface cannot be told apart from the one beside it; this
// is what /v2/version, qoserved -version, and the build_info metric
// report.
type BuildInfo struct {
	Module    string
	Version   string
	GoVersion string
	Revision  string
	BuildTime string
	Modified  bool
}

var buildOnce = sync.OnceValue(readBuild)

// Build reports the running binary's build info, read once from
// runtime/debug.ReadBuildInfo. Fields that the build did not stamp
// (e.g. VCS data outside a git checkout) are empty; Version falls back
// to "(devel)" the way the toolchain reports unreleased modules.
func Build() BuildInfo { return buildOnce() }

func readBuild() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), Version: "(devel)"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.BuildTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}
