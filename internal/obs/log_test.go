package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.Info("checkpoint complete", "bytes", 1234, "lsn", uint64(42), "took", 1500*time.Microsecond)
	line := b.String()
	for _, want := range []string{"level=info", `msg="checkpoint complete"`, "bytes=1234", "lsn=42", "took=1.5ms", "ts="} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	if !strings.HasSuffix(line, "\n") {
		t.Errorf("line not newline-terminated: %q", line)
	}
}

func TestLoggerLevels(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e", "err", errors.New("boom"))
	out := b.String()
	if strings.Contains(out, "level=debug") || strings.Contains(out, "level=info") {
		t.Errorf("suppressed levels leaked: %q", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Errorf("enabled levels missing: %q", out)
	}
	if !strings.Contains(out, "err=boom") {
		t.Errorf("error value not rendered: %q", out)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(b.String(), "level=debug") {
		t.Error("SetLevel did not lower the threshold")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v") // must not panic
	l.SetLevel(LevelError)
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestLoggerQuoting(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.Info("m", "path", "/plain/ok", "spaced", "two words", "eq", "a=b", "empty", "")
	line := b.String()
	for _, want := range []string{"path=/plain/ok", `spaced="two words"`, `eq="a=b"`, `empty=""`} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestLoggerOddKVPairs(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, LevelInfo)
	l.Info("m", "k1", 1, "dangling")
	if !strings.Contains(b.String(), "!BADKEY=dangling") {
		t.Errorf("dangling key not surfaced: %q", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError, "ERROR": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var b syncBuilder
	l := NewLogger(&b, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("concurrent line", "j", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

// syncBuilder is a goroutine-safe strings.Builder for the test.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
