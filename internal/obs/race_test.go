//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates on paths that are allocation-free in a
// normal build, so exact-alloc assertions skip under -race.
const raceEnabled = true
