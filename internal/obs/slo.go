package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// SLO tracking: declared latency/availability objectives plus rolling
// multi-window error-budget burn rates computed from successive
// snapshots of the same cumulative counters the histograms and route
// stats already maintain. Nothing here runs a goroutine — the tracker
// samples lazily whenever Tick is called (the serving layer calls it
// from its stats/metrics paths), so it composes with any lifecycle.
//
// Semantics follow the multi-window burn-rate playbook: an objective
// declares a target fraction of "good" operations (e.g. 0.99 of ranks
// under 25ms); over each window the tracker computes the achieved
// compliance, the burn rate — the observed error rate divided by the
// budgeted error rate, so 1.0 means the budget exactly runs out at the
// end of the SLO period and N means N× too fast — and the fraction of
// the window's error budget still unspent (negative once overspent).

// Objective kinds, reported on the wire and as metric labels.
const (
	SLOLatency      = "latency"
	SLOAvailability = "availability"
)

// Objective declares one service-level objective. Source returns the
// cumulative (good, total) operation counts since process start; the
// tracker differences successive samples of it to get windowed rates.
// Counters must be monotone (histogram snapshots and atomic counters
// both qualify); a regression is treated as a counter reset.
type Objective struct {
	// Name labels the objective everywhere it is reported
	// (qoserved_slo_* series, the /v2/stats slo block).
	Name string
	// Kind is SLOLatency or SLOAvailability (informational).
	Kind string
	// Target is the required good fraction, e.g. 0.99. The error budget
	// is 1 - Target.
	Target float64
	// Threshold is the latency bound of a latency objective
	// (informational; the Source already encodes it).
	Threshold time.Duration
	// Source returns cumulative (good, total) counts.
	Source func() (good, total float64)
}

// LatencySource adapts a Histogram into an Objective source: good =
// observations at or below threshold (interpolated within the covering
// bucket), total = all observations.
func LatencySource(h *Histogram, threshold time.Duration) func() (float64, float64) {
	return func() (float64, float64) {
		s := h.Snapshot()
		return s.CountBelow(threshold), float64(s.Count)
	}
}

// sloSample is one cumulative observation of every objective's
// counters at a point in time.
type sloSample struct {
	at          time.Time
	good, total []float64
}

// SLOTracker computes rolling multi-window compliance and burn rates
// for a set of objectives. Safe for concurrent use.
type SLOTracker struct {
	mu         sync.Mutex
	windows    []time.Duration
	objectives []Objective
	samples    []sloSample
	// minPeriod throttles sampling so high-frequency Tick callers
	// (every scrape, every stats call) keep the ring small.
	minPeriod time.Duration
}

// NewSLOTracker builds a tracker over the given windows (sorted
// ascending; at least one is required). The sampling period is derived
// from the smallest window so every window always spans several
// samples.
func NewSLOTracker(windows ...time.Duration) *SLOTracker {
	if len(windows) == 0 {
		windows = []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
	}
	ws := append([]time.Duration(nil), windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	minPeriod := ws[0] / 8
	if minPeriod < time.Second {
		minPeriod = time.Second
	}
	return &SLOTracker{windows: ws, minPeriod: minPeriod}
}

// SetMinSamplePeriod overrides the sampling throttle (tests use
// sub-second windows).
func (t *SLOTracker) SetMinSamplePeriod(d time.Duration) {
	t.mu.Lock()
	t.minPeriod = d
	t.mu.Unlock()
}

// Add registers an objective. Objectives are fixed at declaration
// time; Add must not race Tick/Report (declare before serving).
func (t *SLOTracker) Add(o Objective) {
	if o.Target <= 0 || o.Target >= 1 {
		panic(fmt.Sprintf("obs: SLO %q target must be in (0,1), got %v", o.Name, o.Target))
	}
	t.mu.Lock()
	t.objectives = append(t.objectives, o)
	t.samples = nil // counters changed shape; restart the ring
	t.mu.Unlock()
}

// Windows returns the tracker's window set (ascending).
func (t *SLOTracker) Windows() []time.Duration {
	return append([]time.Duration(nil), t.windows...)
}

// Tick records a cumulative sample of every objective's counters if at
// least the sampling period has elapsed since the last one. Callers
// hook it into any periodic path (metric scrapes, stats requests);
// extra calls are cheap no-ops.
func (t *SLOTracker) Tick(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.samples); n > 0 && now.Sub(t.samples[n-1].at) < t.minPeriod {
		return
	}
	s := sloSample{at: now, good: make([]float64, len(t.objectives)), total: make([]float64, len(t.objectives))}
	for i := range t.objectives {
		s.good[i], s.total[i] = t.objectives[i].Source()
	}
	t.samples = append(t.samples, s)
	// Prune: keep the newest sample at or beyond the largest window as
	// the far baseline, drop everything older.
	maxW := t.windows[len(t.windows)-1]
	cut := 0
	for cut < len(t.samples)-1 && now.Sub(t.samples[cut+1].at) >= maxW {
		cut++
	}
	if cut > 0 {
		t.samples = append(t.samples[:0], t.samples[cut:]...)
	}
}

// SLOWindowStatus is one objective's state over one window.
type SLOWindowStatus struct {
	Window time.Duration
	// Ops / Good are the windowed operation counts (delta between the
	// live counters and the window's baseline sample).
	Ops  float64
	Good float64
	// Compliance is Good/Ops (1 when the window saw no traffic).
	Compliance float64
	// BurnRate is (1-Compliance)/(1-Target): 1.0 spends the error
	// budget exactly, >1 burns it faster.
	BurnRate float64
	// BudgetRemaining is the unspent fraction of the window's error
	// budget; negative once overspent.
	BudgetRemaining float64
}

// SLOStatus is one objective's multi-window report.
type SLOStatus struct {
	Name      string
	Kind      string
	Target    float64
	Threshold time.Duration
	Windows   []SLOWindowStatus
}

// Report computes every objective's windowed status against the live
// counters. A window with no baseline yet (tracker younger than the
// window) is measured from the oldest sample — i.e. over the tracker's
// lifetime — which converges to the true window as samples accumulate.
func (t *SLOTracker) Report(now time.Time) []SLOStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOStatus, len(t.objectives))
	for i, o := range t.objectives {
		good, total := o.Source()
		st := SLOStatus{Name: o.Name, Kind: o.Kind, Target: o.Target, Threshold: o.Threshold}
		for _, w := range t.windows {
			bGood, bTotal := 0.0, 0.0
			// Newest sample at least w old is the baseline.
			for j := len(t.samples) - 1; j >= 0; j-- {
				if now.Sub(t.samples[j].at) >= w {
					bGood, bTotal = t.samples[j].good[i], t.samples[j].total[i]
					break
				}
			}
			dGood, dTotal := good-bGood, total-bTotal
			if dGood < 0 || dTotal < 0 { // counter reset: measure from zero
				dGood, dTotal = good, total
			}
			ws := SLOWindowStatus{Window: w, Ops: dTotal, Good: dGood, Compliance: 1}
			if dTotal > 0 {
				ws.Compliance = dGood / dTotal
			}
			// Interpolated CDFs can put Compliance a hair past 1; clamp
			// before deriving rates.
			if ws.Compliance > 1 {
				ws.Compliance = 1
			}
			ws.BurnRate = (1 - ws.Compliance) / (1 - o.Target)
			if math.IsNaN(ws.BurnRate) || math.IsInf(ws.BurnRate, 0) || ws.BurnRate < 0 {
				ws.BurnRate = 0
			}
			ws.BudgetRemaining = 1 - ws.BurnRate
			st.Windows = append(st.Windows, ws)
		}
		out[i] = st
	}
	return out
}

// FormatWindow renders a window duration compactly for labels and wire
// fields ("30s", "5m", "1h30m"), avoiding time.Duration's trailing
// zero units ("5m0s").
func FormatWindow(d time.Duration) string {
	s := d.String()
	for _, suffix := range []string{"m0s", "h0m"} {
		if len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix {
			s = s[:len(s)-2]
		}
	}
	return s
}
