//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
