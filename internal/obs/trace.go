package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped stage tracing. A Tracer samples one request in every
// sampleEvery and hands it a Trace: a span recorder the serving layers
// append stage timings to (hint-cache lookup, bandit rank, WAL append,
// commit wait, ...). Finished traces are written as Chrome-trace JSON
// ("trace event format", ph="X" complete events), loadable in
// chrome://tracing, Perfetto, or speedscope.
//
// The untraced path costs one atomic add and a nil check — nothing
// else — so sampling can stay on in production.
//
// Head sampling composes with the FlightRecorder's tail retention (see
// flight.go): when a recorder is attached every request records spans
// into a pooled buffer, the head-sample election decides only whether
// the finished trace is ALSO exported to the tracer's output stream.

// Tracer writes sampled request traces to one output stream.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	c      io.Closer // nil when the writer needs no close
	n      atomic.Uint64
	every  uint64
	start  time.Time // ts reference so timestamps are small and relative
	wrote  bool
	closed bool

	// Write failures are latched, not dropped: the first error is kept
	// (werr, under mu) and surfaced from Close, the count feeds the
	// qoserved_trace_write_errors_total counter. A trace output on a
	// full disk should fail the shutdown path loudly, not silently
	// truncate the document.
	werr  error
	werrs atomic.Int64
}

// NewTracer builds a tracer sampling one request in every sampleEvery
// (<=1 = every request) and writing Chrome-trace JSON to w. If w also
// implements io.Closer, Close closes it after finishing the JSON
// document.
func NewTracer(w io.Writer, sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := &Tracer{w: w, every: uint64(sampleEvery), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// headSample consumes one head-sampling election: true for one request
// in every sampleEvery. Nil-safe (a nil tracer never elects).
func (t *Tracer) headSample() bool {
	if t == nil {
		return false
	}
	return t.n.Add(1)%t.every == 0
}

// Sample returns a fresh Trace for one request in every sampleEvery,
// nil otherwise. All Trace methods are nil-safe, so callers thread the
// result through unconditionally.
func (t *Tracer) Sample() *Trace {
	if !t.headSample() {
		return nil
	}
	return &Trace{tracer: t, head: true}
}

// WriteErrors reports how many event writes have failed so far
// (nil-safe).
func (t *Tracer) WriteErrors() int64 {
	if t == nil {
		return 0
	}
	return t.werrs.Load()
}

// Close terminates the JSON document and closes the underlying writer
// (when it is closeable). Traces finished after Close are dropped. Any
// write error latched during the tracer's lifetime is surfaced here:
// the first event-write failure takes precedence over the terminator's
// own result, so a partially written document never closes clean.
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.werr
	}
	t.closed = true
	var err error
	if t.wrote {
		_, err = io.WriteString(t.w, "\n]\n")
	} else {
		_, err = io.WriteString(t.w, "[]\n")
	}
	if err != nil {
		t.werrs.Add(1)
		if t.werr == nil {
			t.werr = err
		}
	}
	err = t.werr
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// emit appends one trace's events to the output document.
func (t *Tracer) emit(events []traceEvent) {
	if len(events) == 0 {
		return
	}
	var b strings.Builder
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	for _, ev := range events {
		if t.wrote {
			b.WriteString(",\n")
		} else {
			b.WriteString("[\n")
			t.wrote = true
		}
		ts := float64(ev.start.Sub(t.start)) / float64(time.Microsecond)
		dur := float64(ev.dur) / float64(time.Microsecond)
		fmt.Fprintf(&b, `{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"requestId":%q}}`,
			ev.name, ev.cat, ts, dur, ev.tid, ev.requestID)
	}
	if _, err := io.WriteString(t.w, b.String()); err != nil {
		t.werrs.Add(1)
		if t.werr == nil {
			t.werr = err
		}
	}
}

type traceEvent struct {
	name, cat string
	requestID string
	tid       int
	start     time.Time
	dur       time.Duration
}

// Trace records the stage spans of one sampled request. Stage and
// Finish are safe for concurrent use (batch handlers fan jobs out over
// a worker pool) and nil-safe (the unsampled path threads a nil
// *Trace).
type Trace struct {
	tracer *Tracer
	rec    *FlightRecorder // non-nil: tail-retention decision at Finish
	head   bool            // head-sample elected: export via tracer

	mu        sync.Mutex
	requestID string
	events    []traceEvent
}

// SetRequestID attaches the request's correlation ID to every event.
func (tr *Trace) SetRequestID(rid string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.requestID = rid
	tr.mu.Unlock()
}

// Stage records one completed stage span. tid groups spans into rows
// (a batch job index renders each job as its own track); start/dur
// are the span's boundaries as measured by the caller.
func (tr *Trace) Stage(tid int, name string, start time.Time, dur time.Duration) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.events = append(tr.events, traceEvent{name: name, cat: "stage", tid: tid, start: start, dur: dur})
	tr.mu.Unlock()
}

// Finish records the request-level span and flushes the trace. It is
// FinishRequest without an HTTP status: a plain-Finish trace can be
// retained as slow or head-sampled but never as errored.
func (tr *Trace) Finish(name string, start time.Time, dur time.Duration) {
	tr.FinishRequest(name, start, dur, 0)
}

// FinishRequest records the request-level span, exports the trace to
// the tracer's output when head-sampled, and hands it to the flight
// recorder (when one is attached) for the tail-retention decision:
// keep iff slow, errored (status >= 500), or head-sampled. The trace
// must not be used afterwards — recorder-issued traces return to the
// buffer pool.
func (tr *Trace) FinishRequest(name string, start time.Time, dur time.Duration, status int) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.events = append(tr.events, traceEvent{name: name, cat: "request", tid: 0, start: start, dur: dur})
	for i := range tr.events {
		tr.events[i].requestID = tr.requestID
	}
	events := tr.events
	rec := tr.rec
	if rec == nil {
		tr.events = nil
	}
	tr.mu.Unlock()
	if tr.head && tr.tracer != nil {
		tr.tracer.emit(events)
	}
	if rec != nil {
		rec.finish(tr, name, start, dur, status)
	}
}

// reset clears a pooled trace for reuse.
func (tr *Trace) reset() {
	tr.mu.Lock()
	tr.events = tr.events[:0]
	tr.requestID = ""
	tr.head = false
	tr.tracer = nil
	tr.mu.Unlock()
}
