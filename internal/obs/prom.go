package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text-format exposition (version 0.0.4), hand-rolled so
// the observability layer stays stdlib-only. An Exposition collects
// metric samples grouped into families (one # HELP / # TYPE pair per
// family, however many labeled series it holds) and renders them in
// insertion order — deterministic output, which the conformance tests
// and scrape diffing both rely on.

// Labels is an ordered label set. Order is preserved on the wire, so
// callers should pass labels in a stable order.
type Labels []Label

// Label is one name/value pair.
type Label struct{ Name, Value string }

// L is shorthand for a single-label set.
func L(name, value string) Labels { return Labels{{Name: name, Value: value}} }

type promSample struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels Labels
	value  float64
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

// Exposition accumulates metric families for one scrape.
type Exposition struct {
	families []*promFamily
	index    map[string]*promFamily
}

// NewExposition returns an empty exposition builder.
func NewExposition() *Exposition {
	return &Exposition{index: make(map[string]*promFamily)}
}

func (e *Exposition) family(name, help, typ string) *promFamily {
	if f, ok := e.index[name]; ok {
		return f
	}
	f := &promFamily{name: name, help: help, typ: typ}
	e.families = append(e.families, f)
	e.index[name] = f
	return f
}

// Counter adds one series of a counter family. By convention the name
// should end in _total (or another unit suffix for totals).
func (e *Exposition) Counter(name, help string, labels Labels, v float64) {
	f := e.family(name, help, "counter")
	f.samples = append(f.samples, promSample{labels: labels, value: v})
}

// Gauge adds one series of a gauge family.
func (e *Exposition) Gauge(name, help string, labels Labels, v float64) {
	f := e.family(name, help, "gauge")
	f.samples = append(f.samples, promSample{labels: labels, value: v})
}

// Histogram adds one series of a histogram family from a snapshot:
// cumulative _bucket samples with le bounds in seconds (every fixed
// log₂ bucket plus +Inf), then _sum and _count. Bucket counts are
// cumulative and monotone by construction.
func (e *Exposition) Histogram(name, help string, labels Labels, s HistSnapshot) {
	f := e.family(name, help, "histogram")
	cum := uint64(0)
	for i := 0; i < NumHistBuckets-1; i++ {
		cum += s.Buckets[i]
		le := formatFloat(float64(BucketUpperNanos(i)) / float64(time.Second))
		f.samples = append(f.samples, promSample{
			suffix: "_bucket",
			labels: append(append(Labels{}, labels...), Label{"le", le}),
			value:  float64(cum),
		})
	}
	// The +Inf bucket must equal _count; use Count rather than the
	// bucket sum so a racy snapshot still satisfies the invariant.
	total := cum + s.Buckets[NumHistBuckets-1]
	if s.Count > total {
		total = s.Count
	}
	f.samples = append(f.samples, promSample{
		suffix: "_bucket",
		labels: append(append(Labels{}, labels...), Label{"le", "+Inf"}),
		value:  float64(total),
	})
	f.samples = append(f.samples, promSample{suffix: "_sum", labels: labels, value: s.SumSeconds()})
	f.samples = append(f.samples, promSample{suffix: "_count", labels: labels, value: float64(total)})
}

// WriteTo renders the exposition in Prometheus text format.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, f := range e.families {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, s := range f.samples {
			b.WriteString(f.name)
			b.WriteString(s.suffix)
			writeLabels(&b, s.labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// SortSeries orders each family's series by label values so map-fed
// families (per-route metrics) render deterministically. Histogram
// sample groups (bucket/sum/count per series) are kept contiguous and
// internally ordered, so exposition validity is preserved.
func (e *Exposition) SortSeries() {
	for _, f := range e.families {
		if f.typ == "histogram" {
			// One histogram series spans NumHistBuckets+2 samples; sort by
			// groups keyed on the series labels (all samples of a group
			// carry the same base labels, bucket samples plus "le").
			groupSize := NumHistBuckets + 2
			if len(f.samples)%groupSize != 0 {
				continue // mixed construction; leave as inserted
			}
			groups := len(f.samples) / groupSize
			idx := make([]int, groups)
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, bIdx int) bool {
				return labelKey(f.samples[idx[a]*groupSize].labels) < labelKey(f.samples[idx[bIdx]*groupSize].labels)
			})
			out := make([]promSample, 0, len(f.samples))
			for _, g := range idx {
				out = append(out, f.samples[g*groupSize:(g+1)*groupSize]...)
			}
			f.samples = out
			continue
		}
		sort.SliceStable(f.samples, func(a, b int) bool {
			return labelKey(f.samples[a].labels) < labelKey(f.samples[b].labels)
		})
	}
}

func labelKey(ls Labels) string {
	var b strings.Builder
	for _, l := range ls {
		if l.Name == "le" {
			continue
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

func writeLabels(b *strings.Builder, ls Labels) {
	if len(ls) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabelValue applies the text-format escaping rules for label
// values: backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the text-format escaping rules for HELP text:
// backslash and newline (quotes are legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1.7976931348623157e308:
		return "+Inf"
	case v < -1.7976931348623157e308:
		return "-Inf"
	}
	// 'g' can produce exponents like "1e+06"; that is valid text format.
	return strconv.FormatFloat(v, 'g', -1, 64)
}
