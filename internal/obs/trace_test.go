package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerSampling(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, 3)
	sampled := 0
	for i := 0; i < 9; i++ {
		if tr.Sample() != nil {
			sampled++
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 at 1-in-3", sampled)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	span := tr.Sample()
	if span != nil {
		t.Fatal("nil tracer sampled")
	}
	// All methods on a nil trace are no-ops.
	span.SetRequestID("x")
	span.Stage(0, "s", time.Now(), time.Millisecond)
	span.Finish("r", time.Now(), time.Millisecond)
}

func TestTraceOutputIsChromeTraceJSON(t *testing.T) {
	var b strings.Builder
	tracer := NewTracer(&b, 1)
	tr := tracer.Sample()
	if tr == nil {
		t.Fatal("1-in-1 tracer did not sample")
	}
	tr.SetRequestID("req-1")
	start := time.Now()
	tr.Stage(1, "hint_lookup", start, 10*time.Microsecond)
	tr.Stage(1, "bandit_rank", start.Add(10*time.Microsecond), 90*time.Microsecond)
	tr.Finish("/v2/rank", start, 120*time.Microsecond)
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Args struct {
			RequestID string `json:"requestId"`
		} `json:"args"`
	}
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not a JSON event array: %v\n%s", err, b.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X (complete event)", ev.Name, ev.Ph)
		}
		if ev.Args.RequestID != "req-1" {
			t.Errorf("event %q: requestId = %q", ev.Name, ev.Args.RequestID)
		}
	}
	if events[2].Name != "/v2/rank" || events[2].Cat != "request" {
		t.Errorf("last event should be the request span, got %+v", events[2])
	}
	if events[1].Dur < events[0].Dur {
		t.Errorf("bandit stage (%v) should outlast hint lookup (%v)", events[1].Dur, events[0].Dur)
	}
}

func TestTracerEmptyCloseIsValidJSON(t *testing.T) {
	var b strings.Builder
	tracer := NewTracer(&b, 1)
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("empty trace output invalid: %v (%q)", err, b.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty tracer emitted %d events", len(events))
	}
}

func TestTraceAfterCloseIsDropped(t *testing.T) {
	var b strings.Builder
	tracer := NewTracer(&b, 1)
	tr := tracer.Sample()
	tracer.Close()
	tr.Finish("late", time.Now(), time.Millisecond) // must not corrupt the closed document
	var events []any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("document corrupted by post-close finish: %v (%q)", err, b.String())
	}
}
