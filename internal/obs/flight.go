package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: tail-based trace retention. Head sampling (Tracer)
// answers "what does a typical request look like" — but the p999
// outliers that burn an error budget are almost never the 1-in-N that
// got elected. The recorder inverts the decision: EVERY request
// records stage spans into a pooled buffer, and only at Finish — when
// the latency and status are known — does the trace earn retention.
// Retained traces land in a bounded ring queryable over /v2/traces;
// everything else returns to the pool, so the unretained fast path
// adds ~0 allocations per request.

// Retention thresholds and capacity defaults.
const (
	// DefaultRetainThreshold is the slow-trace cutoff for routes
	// without a per-route override.
	DefaultRetainThreshold = 250 * time.Millisecond
	// DefaultFlightCapacity bounds the retained ring: ~256 traces of a
	// few KB each keeps the recorder's memory ceiling in the low MB.
	DefaultFlightCapacity = 256
)

// Retention reasons, in decision precedence order.
const (
	RetainError   = "error"   // request failed server-side (status >= 500)
	RetainSlow    = "slow"    // duration crossed the route's threshold
	RetainSampled = "sampled" // head-sample elected (the 1-in-N export arm)
)

// FlightConfig parameterizes a recorder.
type FlightConfig struct {
	// Capacity bounds the retained ring (0 = DefaultFlightCapacity).
	Capacity int
	// Threshold is the slow cutoff for routes without an override
	// (0 = DefaultRetainThreshold).
	Threshold time.Duration
	// RouteThresholds overrides the slow cutoff per route name. A
	// negative value disables slow retention for that route — the
	// escape hatch for long-poll endpoints that are slow by design.
	RouteThresholds map[string]time.Duration
}

// SpanEvent is one retained span in exported form.
type SpanEvent struct {
	Name     string
	Cat      string
	TID      int
	Start    time.Time
	Duration time.Duration
}

// RetainedTrace is one request kept by the recorder. Immutable after
// insertion; Query returns copies sharing the (never mutated) Events
// slice.
type RetainedTrace struct {
	Seq       uint64 // monotonic retention sequence, 1-based
	Route     string
	RequestID string
	Reason    string // RetainError | RetainSlow | RetainSampled
	Status    int    // HTTP status (0 when unknown)
	Start     time.Time
	Duration  time.Duration
	Events    []SpanEvent
}

// FlightStats is a recorder counter snapshot.
type FlightStats struct {
	Retained        int // traces currently in the ring
	Capacity        int
	RetainedSlow    int64
	RetainedError   int64
	RetainedSampled int64
	Evicted         int64 // retained traces pushed out by newer ones
	Threshold       time.Duration
}

// FlightRecorder is the bounded, lock-protected retention ring plus
// the span-buffer pool feeding it. Safe for concurrent use; the ring
// mutex is touched only on retention, never on the fast path.
type FlightRecorder struct {
	cfg   FlightConfig
	epoch time.Time
	pool  sync.Pool

	retainedSlow    atomic.Int64
	retainedError   atomic.Int64
	retainedSampled atomic.Int64
	evicted         atomic.Int64

	mu   sync.Mutex
	ring []RetainedTrace
	head int // oldest slot once the ring is full
	seq  uint64
}

// NewFlightRecorder builds a recorder; zero-value config fields take
// the package defaults.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultFlightCapacity
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultRetainThreshold
	}
	r := &FlightRecorder{cfg: cfg, epoch: time.Now()}
	r.pool.New = func() any { return &Trace{} }
	return r
}

// Epoch is the recorder's timestamp reference (Chrome-trace ts values
// are rendered relative to it).
func (r *FlightRecorder) Epoch() time.Time { return r.epoch }

// Begin issues the span buffer for one request. Unlike Tracer.Sample
// it never returns nil: every request records, retention is decided at
// FinishRequest. The optional tracer contributes the head-sample
// election (and receives the export copy of elected traces). Nil-safe:
// a nil recorder degrades to plain head sampling.
func (r *FlightRecorder) Begin(t *Tracer) *Trace {
	if r == nil {
		return t.Sample()
	}
	tr := r.pool.Get().(*Trace)
	tr.tracer = t
	tr.rec = r
	tr.head = t.headSample()
	return tr
}

// thresholdFor resolves the slow cutoff for a route; negative means
// "never slow".
func (r *FlightRecorder) thresholdFor(route string) time.Duration {
	if d, ok := r.cfg.RouteThresholds[route]; ok {
		return d
	}
	return r.cfg.Threshold
}

// finish applies the retention decision and recycles the trace.
// Called by Trace.FinishRequest with the request event already
// appended, so a retained copy carries the full span set.
func (r *FlightRecorder) finish(tr *Trace, route string, start time.Time, dur time.Duration, status int) {
	reason := ""
	if status >= 500 {
		reason = RetainError
		r.retainedError.Add(1)
	} else if thr := r.thresholdFor(route); thr >= 0 && dur >= thr {
		reason = RetainSlow
		r.retainedSlow.Add(1)
	} else if tr.head {
		reason = RetainSampled
		r.retainedSampled.Add(1)
	}
	if reason != "" {
		r.retain(tr, route, reason, status, start, dur)
	}
	tr.reset()
	r.pool.Put(tr)
}

// retain copies the trace's spans into the ring, evicting the oldest
// entry when full.
func (r *FlightRecorder) retain(tr *Trace, route, reason string, status int, start time.Time, dur time.Duration) {
	tr.mu.Lock()
	events := make([]SpanEvent, len(tr.events))
	for i, ev := range tr.events {
		events[i] = SpanEvent{Name: ev.name, Cat: ev.cat, TID: ev.tid, Start: ev.start, Duration: ev.dur}
	}
	rid := tr.requestID
	tr.mu.Unlock()

	rt := RetainedTrace{
		Route:     route,
		RequestID: rid,
		Reason:    reason,
		Status:    status,
		Start:     start,
		Duration:  dur,
		Events:    events,
	}
	r.mu.Lock()
	r.seq++
	rt.Seq = r.seq
	if len(r.ring) < r.cfg.Capacity {
		r.ring = append(r.ring, rt)
	} else {
		r.ring[r.head] = rt
		r.head = (r.head + 1) % len(r.ring)
		r.evicted.Add(1)
	}
	r.mu.Unlock()
}

// Query returns retained traces newest-first, filtered by route (""
// matches all) and minimum duration, capped at limit (<=0 = all).
// Nil-safe.
func (r *FlightRecorder) Query(route string, minDur time.Duration, limit int) []RetainedTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.ring)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]RetainedTrace, 0, limit)
	for i := 0; i < n && len(out) < limit; i++ {
		// Newest-first: the slot before head holds the latest entry.
		rt := r.ring[((r.head-1-i)%n+n)%n]
		if route != "" && rt.Route != route {
			continue
		}
		if rt.Duration < minDur {
			continue
		}
		out = append(out, rt)
	}
	return out
}

// Stats snapshots the recorder's counters (nil-safe).
func (r *FlightRecorder) Stats() FlightStats {
	if r == nil {
		return FlightStats{}
	}
	r.mu.Lock()
	retained := len(r.ring)
	r.mu.Unlock()
	return FlightStats{
		Retained:        retained,
		Capacity:        r.cfg.Capacity,
		RetainedSlow:    r.retainedSlow.Load(),
		RetainedError:   r.retainedError.Load(),
		RetainedSampled: r.retainedSampled.Load(),
		Evicted:         r.evicted.Load(),
		Threshold:       r.cfg.Threshold,
	}
}
