// Package drift is the online drift safeguard: per-template streaming
// reward statistics that detect plan regressions after a hint is
// installed, and a quarantine state machine that decides when a
// template's hint must stop being served. The paper's production
// deployment catches regressions offline (validation + flighting);
// this package closes the gap for regressions that develop AFTER
// rollout — a data or workload shift that turns yesterday's validated
// hint into today's liability.
//
// Memory stays bounded under open-ended template churn with a two-tier
// design in the COMPASS tradition: every observation lands in a
// count-min sketch over template hashes (fixed memory, no per-template
// state), and only templates the sketch has seen at least GateCount
// times graduate to an exact per-template entry holding the decayed
// statistics. Exact entries are further capped at MaxTemplates with
// eviction of the least-recently-seen healthy entry.
//
// Detection is a dual-EWMA contrast: a slow exponentially-decayed
// mean/variance tracks the template's reward baseline, a fast EWMA
// tracks its recent level, and the drift score is the gap between them
// in baseline standard deviations. A persistent reward collapse drives
// the score up; the state machine quarantines only after the score
// stays degraded for QuarantineAfter consecutive observations
// (hysteresis — one noisy batch cannot flap a hint), and restores only
// after a probation period of sustained recovery.
//
// The detector itself holds no durability or enforcement concerns:
// Observe proposes state transitions and the caller commits them after
// journaling (internal/serve owns that), so an unjournalable
// transition is never half-applied.
package drift

import (
	"math"
	"sort"
	"sync"
)

// State is a template's position in the quarantine state machine.
type State uint8

const (
	// StateHealthy: the installed hint (if any) is served normally.
	StateHealthy State = iota
	// StateSuspect: the drift score is degraded but has not persisted
	// long enough to act on. In-memory only — suspicion is noisy by
	// design and is never journaled or replicated.
	StateSuspect
	// StateQuarantined: the template's hint is refused; rank requests
	// fall back to the bandit/exploration path.
	StateQuarantined
	// StateProbation: rewards have recovered; the hint is served again
	// tentatively while the detector watches for relapse.
	StateProbation
)

// String renders the canonical wire form ("healthy", "suspect",
// "quarantined", "probation").
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateQuarantined:
		return "quarantined"
	case StateProbation:
		return "probation"
	default:
		return "unknown"
	}
}

// Durable reports whether the state survives in the journal: Healthy
// and Suspect are the implicit default (absent from quarantine
// records); Quarantined and Probation are carried explicitly.
func (s State) Durable() bool { return s == StateQuarantined || s == StateProbation }

// Transition is one proposed or committed state-machine move. Score is
// the drift score at proposal time; Manual marks operator-initiated
// transitions (the admin endpoint) as opposed to detector-initiated.
type Transition struct {
	TemplateHash uint64
	From, To     State
	Score        float64
	Manual       bool
}

// Config parameterizes the detector. The zero value selects the
// defaults below via withDefaults; Disabled is only meaningful to
// embedders that thread a Config through without constructing a
// detector.
type Config struct {
	// FastAlpha is the decay of the fast (recent-level) EWMA.
	FastAlpha float64 // default 0.08
	// SlowAlpha is the decay of the slow (baseline) EWMA and its
	// exponentially-weighted variance.
	SlowAlpha float64 // default 0.005
	// Threshold is the drift score (baseline standard deviations below
	// baseline mean) at or above which an observation counts as
	// degraded.
	Threshold float64 // default 4
	// RecoverThreshold is the score at or below which a quarantined or
	// probation template's observation counts as recovered (0 defaults
	// to Threshold/2 — the gap is the score hysteresis band).
	RecoverThreshold float64
	// MinSamples is how many observations a template needs before its
	// score is trusted at all.
	MinSamples int // default 32
	// QuarantineAfter is how many consecutive degraded observations a
	// suspect template needs to be quarantined.
	QuarantineAfter int // default 16
	// ProbationAfter is how many consecutive recovered observations a
	// quarantined template needs to enter probation.
	ProbationAfter int // default 16
	// RestoreAfter is how many consecutive recovered observations a
	// probation template needs to be restored to healthy.
	RestoreAfter int // default 32
	// SketchWidth and SketchDepth size the count-min sketch
	// (width counters per row, depth rows).
	SketchWidth int // default 1024
	SketchDepth int // default 4
	// GateCount is the sketch estimate a template needs before the
	// detector allocates an exact entry for it.
	GateCount uint32 // default 4
	// MaxTemplates caps exact entries; beyond it the least-recently-seen
	// healthy entry is evicted (non-healthy entries are never evicted).
	MaxTemplates int // default 4096
}

// DefaultConfig returns the default detector parameters.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.FastAlpha <= 0 {
		c.FastAlpha = 0.08
	}
	if c.SlowAlpha <= 0 {
		c.SlowAlpha = 0.005
	}
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.RecoverThreshold <= 0 {
		c.RecoverThreshold = c.Threshold / 2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 16
	}
	if c.ProbationAfter <= 0 {
		c.ProbationAfter = 16
	}
	if c.RestoreAfter <= 0 {
		c.RestoreAfter = 32
	}
	if c.SketchWidth <= 0 {
		c.SketchWidth = 1024
	}
	if c.SketchDepth <= 0 {
		c.SketchDepth = 4
	}
	if c.GateCount == 0 {
		c.GateCount = 4
	}
	if c.MaxTemplates <= 0 {
		c.MaxTemplates = 4096
	}
	return c
}

// entry is one template's exact tracking state.
type entry struct {
	state    State
	fast     float64 // fast EWMA of reward
	slow     float64 // slow EWMA of reward (baseline)
	variance float64 // exponentially-weighted variance around slow
	count    uint64  // observations since tracking began
	lastTick uint64  // detector tick of the last observation (eviction order)

	// Hysteresis run counters. degraded counts consecutive degraded
	// observations; recovered counts consecutive recovered ones. A
	// proposal does not reset them — only Commit does — so an
	// unjournalable transition is re-proposed on the next observation.
	degraded  int
	recovered int
}

// Detector holds the streaming statistics and the state machine. All
// methods are safe for concurrent use; the hot path (Observe) takes
// one mutex, updates a handful of floats, and allocates only when a
// template first graduates from the sketch.
type Detector struct {
	cfg Config

	mu      sync.Mutex
	sketch  []uint32 // depth rows of width counters, row-major
	entries map[uint64]*entry
	tick    uint64

	observations int64
	gated        int64 // observations absorbed by the sketch alone
	evictions    int64
}

// NewDetector builds a detector (zero Config = defaults).
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:     cfg,
		sketch:  make([]uint32, cfg.SketchWidth*cfg.SketchDepth),
		entries: make(map[uint64]*entry),
	}
}

// Config returns the (defaulted) parameters the detector runs with.
func (d *Detector) Config() Config { return d.cfg }

// mix64 is splitmix64's finalizer — the same mixer the bandit uses for
// feature hashing. Each sketch row salts the template hash with an odd
// constant derived from the row index so the rows are independent.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sketchAdd increments the template's counters and returns the new
// count-min estimate.
func (d *Detector) sketchAdd(hash uint64) uint32 {
	est := uint32(math.MaxUint32)
	w := uint64(d.cfg.SketchWidth)
	for row := 0; row < d.cfg.SketchDepth; row++ {
		h := mix64(hash + uint64(row)*0x9e3779b97f4a7c15)
		c := &d.sketch[uint64(row)*w+h%w]
		if *c != math.MaxUint32 {
			*c++
		}
		if *c < est {
			est = *c
		}
	}
	return est
}

// score computes the drift score for an entry: how many baseline
// standard deviations the fast (recent) reward level sits BELOW the
// slow baseline. Positive = rewards collapsing; zero or negative =
// recent rewards at or above baseline. A variance floor keeps
// near-constant reward streams from dividing by zero — for those, any
// real drop produces a large finite score, which is the desired
// behavior.
func (e *entry) score() float64 {
	std := math.Sqrt(e.variance)
	floor := 1e-9 + 0.001*math.Abs(e.slow)
	if std < floor {
		std = floor
	}
	return (e.slow - e.fast) / std
}

// Observe feeds one reward observation for a template and returns a
// proposed durable transition when the state machine wants one. The
// caller must journal the transition and then Commit it; until Commit,
// the entry's counters hold and the same transition is re-proposed on
// subsequent observations (fail-stop: a transition that cannot be made
// durable is never applied). Healthy↔Suspect moves are internal and
// committed immediately.
//
// NaN and infinite rewards must be rejected upstream; Observe drops
// them defensively (they would poison the decayed statistics).
func (d *Detector) Observe(hash uint64, reward float64) (Transition, bool) {
	if math.IsNaN(reward) || math.IsInf(reward, 0) {
		return Transition{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	d.observations++

	e, ok := d.entries[hash]
	if !ok {
		if est := d.sketchAdd(hash); est < d.cfg.GateCount {
			// Below the graduation gate: the sketch absorbed it, no
			// per-template state exists yet.
			d.gated++
			return Transition{}, false
		}
		if len(d.entries) >= d.cfg.MaxTemplates && !d.evictLocked() {
			d.gated++
			return Transition{}, false
		}
		e = &entry{fast: reward, slow: reward}
		d.entries[hash] = e
	}
	e.lastTick = d.tick
	e.count++

	// Decayed statistics: slow baseline with exponentially-weighted
	// variance (West's recurrence), fast recent level. The baseline is
	// robustified: once established, a sample far BELOW it — the
	// regression signature — must not be absorbed into the baseline
	// mean/variance at full rate, or a sustained collapse would inflate
	// the variance fast enough to normalize itself below the score
	// threshold before the hysteresis window fills. Outlier samples
	// instead drag the mean at 1/8 rate (so a genuine permanent shift
	// still becomes the new baseline, over thousands of observations)
	// and leave the variance untouched.
	delta := reward - e.slow
	std := math.Sqrt(e.variance)
	if floor := 1e-9 + 0.001*math.Abs(e.slow); std < floor {
		std = floor
	}
	if e.count >= uint64(d.cfg.MinSamples) && -delta >= d.cfg.Threshold*std {
		e.slow += d.cfg.SlowAlpha / 8 * delta
	} else {
		e.slow += d.cfg.SlowAlpha * delta
		e.variance = (1 - d.cfg.SlowAlpha) * (e.variance + d.cfg.SlowAlpha*delta*delta)
	}
	e.fast += d.cfg.FastAlpha * (reward - e.fast)

	if e.count < uint64(d.cfg.MinSamples) {
		return Transition{}, false
	}
	s := e.score()
	degraded := s >= d.cfg.Threshold
	recovered := s <= d.cfg.RecoverThreshold
	if degraded {
		e.degraded++
	} else {
		e.degraded = 0
	}
	if recovered {
		e.recovered++
	} else {
		e.recovered = 0
	}

	switch e.state {
	case StateHealthy:
		if degraded {
			e.state = StateSuspect // internal move, not journaled
		}
	case StateSuspect:
		if e.degraded >= d.cfg.QuarantineAfter {
			return Transition{TemplateHash: hash, From: StateSuspect, To: StateQuarantined, Score: s}, true
		}
		if !degraded {
			e.state = StateHealthy // suspicion cleared, internal move
		}
	case StateQuarantined:
		if e.recovered >= d.cfg.ProbationAfter {
			return Transition{TemplateHash: hash, From: StateQuarantined, To: StateProbation, Score: s}, true
		}
	case StateProbation:
		if e.degraded >= 1 {
			// Relapse during probation: straight back to quarantine, no
			// suspect dwell — the template already proved it can regress.
			return Transition{TemplateHash: hash, From: StateProbation, To: StateQuarantined, Score: s}, true
		}
		if e.recovered >= d.cfg.RestoreAfter {
			return Transition{TemplateHash: hash, From: StateProbation, To: StateHealthy, Score: s}, true
		}
	}
	return Transition{}, false
}

// Commit applies a proposed (and now journaled) transition: the entry
// moves to the target state and its hysteresis counters reset. Manual
// transitions on untracked templates allocate an entry so the detector
// can observe the template's recovery.
func (d *Detector) Commit(t Transition) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[t.TemplateHash]
	if !ok {
		e = &entry{lastTick: d.tick}
		d.entries[t.TemplateHash] = e
	}
	e.state = t.To
	e.degraded = 0
	e.recovered = 0
}

// Restore seeds a template's state without a transition — the
// crash-recovery and follower-promotion path (the journal already
// holds the record that produced this state). Statistics start fresh;
// only the state machine position is durable.
func (d *Detector) Restore(states map[uint64]State) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for hash, st := range states {
		if !st.Durable() {
			continue
		}
		e, ok := d.entries[hash]
		if !ok {
			e = &entry{lastTick: d.tick}
			d.entries[hash] = e
		}
		e.state = st
		e.degraded = 0
		e.recovered = 0
	}
}

// evictLocked removes the least-recently-seen healthy entry to make
// room, returning false when every entry is non-healthy (those pin
// their slots: evicting a quarantined template would silently lift its
// safeguard on the detector side).
func (d *Detector) evictLocked() bool {
	var victim uint64
	var victimTick uint64 = math.MaxUint64
	found := false
	for hash, e := range d.entries {
		if e.state != StateHealthy || e.degraded > 0 {
			continue
		}
		if e.lastTick < victimTick {
			victim, victimTick, found = hash, e.lastTick, true
		}
	}
	if found {
		delete(d.entries, victim)
		d.evictions++
	}
	return found
}

// TemplateStats is one tracked template's public view.
type TemplateStats struct {
	TemplateHash uint64
	State        State
	Score        float64
	FastMean     float64
	SlowMean     float64
	Observations uint64
}

// Stats is the detector's aggregate view.
type Stats struct {
	Tracked      int   // exact entries
	Observations int64 // total rewards observed
	SketchGated  int64 // observations absorbed by the sketch alone
	Evictions    int64
	SketchBytes  int
	Suspects     int
	Quarantined  int
	Probation    int
}

// Stats snapshots the aggregate counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Stats{
		Tracked:      len(d.entries),
		Observations: d.observations,
		SketchGated:  d.gated,
		Evictions:    d.evictions,
		SketchBytes:  len(d.sketch) * 4,
	}
	for _, e := range d.entries {
		switch e.state {
		case StateSuspect:
			s.Suspects++
		case StateQuarantined:
			s.Quarantined++
		case StateProbation:
			s.Probation++
		}
	}
	return s
}

// Templates returns per-template stats for every non-healthy template
// plus the top worst-scoring healthy ones up to limit total entries
// (limit <= 0 means non-healthy only). Sorted by score descending.
func (d *Detector) Templates(limit int) []TemplateStats {
	d.mu.Lock()
	out := make([]TemplateStats, 0, len(d.entries))
	for hash, e := range d.entries {
		out = append(out, TemplateStats{
			TemplateHash: hash,
			State:        e.state,
			Score:        e.score(),
			FastMean:     e.fast,
			SlowMean:     e.slow,
			Observations: e.count,
		})
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		// Non-healthy templates first (they are the operational signal),
		// then by score descending, hash as the deterministic tiebreak.
		hi, hj := out[i].State == StateHealthy, out[j].State == StateHealthy
		if hi != hj {
			return hj
		}
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].TemplateHash < out[j].TemplateHash
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	} else if limit <= 0 {
		n := 0
		for _, t := range out {
			if t.State != StateHealthy {
				n++
			}
		}
		out = out[:n]
	}
	return out
}

// StateOf reports a template's current state (StateHealthy when
// untracked).
func (d *Detector) StateOf(hash uint64) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[hash]; ok {
		return e.state
	}
	return StateHealthy
}
