package drift

import "math/rand"

// Flood generates deterministic synthetic reward streams for chaos
// tests and the steering_drift example: a gaussian reward source whose
// mean can be shifted mid-stream to script a plan regression (reward
// collapse after a workload shift) and a later recovery. Determinism
// matters — the chaos tests assert quarantine within a bounded number
// of batches, which only holds for a reproducible stream.
type Flood struct {
	rng   *rand.Rand
	mean  float64
	sigma float64
}

// NewFlood builds a reward source emitting N(mean, sigma²) values.
func NewFlood(seed int64, mean, sigma float64) *Flood {
	return &Flood{rng: rand.New(rand.NewSource(seed)), mean: mean, sigma: sigma}
}

// Shift moves the stream's mean — the scripted regression (downward
// shift) or recovery (back up).
func (f *Flood) Shift(mean float64) { f.mean = mean }

// Next draws one reward.
func (f *Flood) Next() float64 { return f.mean + f.sigma*f.rng.NormFloat64() }

// Batch draws n rewards.
func (f *Flood) Batch(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}
