package drift

import (
	"sync"
	"sync/atomic"
)

// Table is the enforcement side of the safeguard: the set of templates
// whose durable state is non-healthy, read on every rank request and
// written only on (rare) committed transitions. It is copy-on-write
// behind an atomic pointer so the hot-path read is one atomic load
// plus a map lookup — no lock, no allocation — and nil when no
// template has ever been quarantined, which keeps the common case (no
// drift anywhere) to a single predictable-branch pointer check.
//
// Every server holds a Table, including followers and servers with
// detection disabled: enforcement must replicate even where detection
// does not run.
type Table struct {
	mu sync.Mutex                       // serializes writers
	p  atomic.Pointer[map[uint64]State] // nil until first non-healthy state
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// Blocked reports whether the template's installed hint must be
// refused (only StateQuarantined blocks; probation serves the hint
// tentatively). This is the rank hot path: zero allocations.
func (t *Table) Blocked(hash uint64) bool {
	m := t.p.Load()
	if m == nil {
		return false
	}
	return (*m)[hash] == StateQuarantined
}

// StateOf reports the template's durable state (StateHealthy when
// absent).
func (t *Table) StateOf(hash uint64) State {
	m := t.p.Load()
	if m == nil {
		return StateHealthy
	}
	return (*m)[hash]
}

// Set records a template's durable state: healthy removes the entry,
// quarantined/probation upserts it. Suspect is not durable and is
// rejected by ignoring it.
func (t *Table) Set(hash uint64, st State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.p.Load()
	var next map[uint64]State
	if old != nil {
		next = make(map[uint64]State, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	} else {
		next = make(map[uint64]State, 1)
	}
	if st.Durable() {
		next[hash] = st
	} else {
		delete(next, hash)
	}
	t.store(next)
}

// Replace installs a complete durable-state map wholesale — the replay
// and snapshot-restore path (quarantine journal records carry the full
// table, so last-record-wins).
func (t *Table) Replace(states map[uint64]State) {
	next := make(map[uint64]State, len(states))
	for k, v := range states {
		if v.Durable() {
			next[k] = v
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.store(next)
}

func (t *Table) store(next map[uint64]State) {
	if len(next) == 0 {
		t.p.Store(nil)
		return
	}
	t.p.Store(&next)
}

// Snapshot copies the durable-state map (nil-safe, possibly empty).
func (t *Table) Snapshot() map[uint64]State {
	m := t.p.Load()
	if m == nil {
		return map[uint64]State{}
	}
	out := make(map[uint64]State, len(*m))
	for k, v := range *m {
		out[k] = v
	}
	return out
}

// Len reports how many templates hold a durable non-healthy state.
func (t *Table) Len() int {
	m := t.p.Load()
	if m == nil {
		return 0
	}
	return len(*m)
}

// Counts reports the durable population by state.
func (t *Table) Counts() (quarantined, probation int) {
	m := t.p.Load()
	if m == nil {
		return 0, 0
	}
	for _, v := range *m {
		switch v {
		case StateQuarantined:
			quarantined++
		case StateProbation:
			probation++
		}
	}
	return quarantined, probation
}
