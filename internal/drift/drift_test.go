package drift

import (
	"math"
	"testing"
)

// testConfig is small enough to drive transitions quickly in tests.
func testConfig() Config {
	return Config{
		MinSamples:      8,
		QuarantineAfter: 4,
		ProbationAfter:  4,
		RestoreAfter:    8,
		GateCount:       1, // no sketch gating in unit tests
	}
}

// feed drives rewards through the detector, committing every proposed
// transition, and returns the committed transitions.
func feed(d *Detector, hash uint64, rewards []float64) []Transition {
	var out []Transition
	for _, r := range rewards {
		if tr, ok := d.Observe(hash, r); ok {
			d.Commit(tr)
			out = append(out, tr)
		}
	}
	return out
}

func TestQuarantineOnRegression(t *testing.T) {
	d := NewDetector(testConfig())
	f := NewFlood(1, 1.0, 0.05)
	const tmpl = 0xabc
	feed(d, tmpl, f.Batch(200)) // establish baseline
	if st := d.StateOf(tmpl); st != StateHealthy {
		t.Fatalf("baseline state = %v, want healthy", st)
	}
	f.Shift(0.2) // collapse
	trs := feed(d, tmpl, f.Batch(200))
	if st := d.StateOf(tmpl); st != StateQuarantined {
		t.Fatalf("post-regression state = %v, want quarantined (transitions %v)", st, trs)
	}
	if len(trs) != 1 || trs[0].To != StateQuarantined || trs[0].From != StateSuspect {
		t.Fatalf("transitions = %+v, want one suspect->quarantined", trs)
	}
	if trs[0].Score < d.Config().Threshold {
		t.Fatalf("transition score %.2f below threshold %.2f", trs[0].Score, d.Config().Threshold)
	}
}

func TestProbationAndRestoreOnRecovery(t *testing.T) {
	d := NewDetector(testConfig())
	f := NewFlood(2, 1.0, 0.05)
	const tmpl = 0xdef
	feed(d, tmpl, f.Batch(200))
	f.Shift(0.2)
	feed(d, tmpl, f.Batch(200))
	if st := d.StateOf(tmpl); st != StateQuarantined {
		t.Fatalf("state = %v, want quarantined", st)
	}
	f.Shift(1.0) // recovery
	trs := feed(d, tmpl, f.Batch(600))
	if st := d.StateOf(tmpl); st != StateHealthy {
		t.Fatalf("post-recovery state = %v, want healthy (transitions %+v)", st, trs)
	}
	// The path must pass through probation: quarantined -> probation -> healthy.
	if len(trs) != 2 || trs[0].To != StateProbation || trs[1].To != StateHealthy {
		t.Fatalf("recovery transitions = %+v, want probation then healthy", trs)
	}
}

func TestHysteresisIgnoresOneNoisyBatch(t *testing.T) {
	d := NewDetector(testConfig())
	f := NewFlood(3, 1.0, 0.05)
	const tmpl = 0x123
	feed(d, tmpl, f.Batch(200))
	// A burst shorter than QuarantineAfter must not quarantine.
	bad := NewFlood(4, 0.2, 0.05)
	trs := feed(d, tmpl, bad.Batch(3))
	if len(trs) != 0 {
		t.Fatalf("short burst produced transitions %+v", trs)
	}
	// Recovery clears suspicion without any durable transition.
	trs = feed(d, tmpl, f.Batch(100))
	if len(trs) != 0 {
		t.Fatalf("recovered burst produced transitions %+v", trs)
	}
	if st := d.StateOf(tmpl); st != StateHealthy {
		t.Fatalf("state = %v, want healthy", st)
	}
}

func TestUncommittedTransitionReproposed(t *testing.T) {
	d := NewDetector(testConfig())
	f := NewFlood(5, 1.0, 0.05)
	const tmpl = 0x777
	feed(d, tmpl, f.Batch(200))
	bad := NewFlood(6, 0.2, 0.05)
	var first *Transition
	for i := 0; i < 200; i++ {
		if tr, ok := d.Observe(tmpl, bad.Next()); ok {
			first = &tr
			break
		}
	}
	if first == nil {
		t.Fatal("no transition proposed")
	}
	// Simulate a journal failure: do NOT commit. The next degraded
	// observation must re-propose the same move.
	tr2, ok := d.Observe(tmpl, bad.Next())
	if !ok || tr2.To != StateQuarantined {
		t.Fatalf("re-proposal = %+v ok=%v, want quarantined proposal", tr2, ok)
	}
	if st := d.StateOf(tmpl); st != StateSuspect {
		t.Fatalf("state committed without Commit: %v", st)
	}
}

func TestSketchGateBoundsMemory(t *testing.T) {
	cfg := testConfig()
	cfg.GateCount = 4
	cfg.MaxTemplates = 16
	d := NewDetector(cfg)
	// 10k one-shot templates: all absorbed by the sketch, no entries.
	for i := uint64(0); i < 10000; i++ {
		d.Observe(1000+i*7919, 1.0)
	}
	// Sketch collisions can graduate a few false positives, but exact
	// state stays capped at MaxTemplates no matter how many distinct
	// templates flow past.
	st := d.Stats()
	if st.Tracked > cfg.MaxTemplates {
		t.Fatalf("tracked=%d exceeds cap %d", st.Tracked, cfg.MaxTemplates)
	}
	if st.SketchGated == 0 {
		t.Fatal("sketch gated counter not advancing")
	}
	// A hot template graduates to exact tracking after GateCount
	// sightings (evicting a cold healthy entry if the cap is full).
	for i := 0; i < 10; i++ {
		d.Observe(42, 1.0)
	}
	found := false
	for _, ts := range d.Templates(cfg.MaxTemplates) {
		if ts.TemplateHash == 42 {
			found = true
		}
	}
	if !found {
		t.Fatal("hot template did not graduate to exact tracking")
	}
	if got := d.Stats().Tracked; got > cfg.MaxTemplates {
		t.Fatalf("tracked=%d exceeds cap %d", got, cfg.MaxTemplates)
	}
}

func TestMaxTemplatesEvictsHealthyOnly(t *testing.T) {
	cfg := testConfig()
	cfg.MaxTemplates = 4
	d := NewDetector(cfg)
	f := NewFlood(7, 1.0, 0.05)
	for h := uint64(1); h <= 4; h++ {
		feed(d, h, f.Batch(50))
	}
	// Quarantine template 1 manually; it must pin its slot.
	d.Commit(Transition{TemplateHash: 1, From: StateHealthy, To: StateQuarantined, Manual: true})
	// New templates force eviction of healthy entries, never of 1.
	for h := uint64(100); h < 120; h++ {
		d.Observe(h, 1.0)
	}
	if st := d.StateOf(1); st != StateQuarantined {
		t.Fatalf("quarantined template evicted: state=%v", st)
	}
	if got := d.Stats().Tracked; got > cfg.MaxTemplates {
		t.Fatalf("tracked=%d exceeds cap %d", got, cfg.MaxTemplates)
	}
}

func TestObserveRejectsNonFinite(t *testing.T) {
	d := NewDetector(testConfig())
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := d.Observe(1, v); ok {
			t.Fatalf("non-finite reward %v proposed a transition", v)
		}
	}
	if d.Stats().Observations != 0 {
		t.Fatal("non-finite rewards counted as observations")
	}
}

func TestRestoreSeedsDurableStates(t *testing.T) {
	d := NewDetector(testConfig())
	d.Restore(map[uint64]State{
		1: StateQuarantined,
		2: StateProbation,
		3: StateSuspect, // not durable; must be ignored
	})
	if st := d.StateOf(1); st != StateQuarantined {
		t.Fatalf("state(1)=%v", st)
	}
	if st := d.StateOf(2); st != StateProbation {
		t.Fatalf("state(2)=%v", st)
	}
	if st := d.StateOf(3); st != StateHealthy {
		t.Fatalf("state(3)=%v, suspect must not restore", st)
	}
}

func TestTableBlockedAndReplace(t *testing.T) {
	tb := NewTable()
	if tb.Blocked(1) {
		t.Fatal("empty table blocks")
	}
	tb.Set(1, StateQuarantined)
	tb.Set(2, StateProbation)
	if !tb.Blocked(1) {
		t.Fatal("quarantined not blocked")
	}
	if tb.Blocked(2) {
		t.Fatal("probation must serve the hint")
	}
	tb.Set(1, StateHealthy)
	if tb.Blocked(1) || tb.Len() != 1 {
		t.Fatalf("restore failed: blocked=%v len=%d", tb.Blocked(1), tb.Len())
	}
	tb.Replace(map[uint64]State{5: StateQuarantined, 6: StateSuspect})
	if !tb.Blocked(5) || tb.Len() != 1 {
		t.Fatalf("replace failed: blocked(5)=%v len=%d", tb.Blocked(5), tb.Len())
	}
	tb.Replace(nil)
	if tb.Len() != 0 || tb.Blocked(5) {
		t.Fatal("empty replace did not clear")
	}
	q, p := tb.Counts()
	if q != 0 || p != 0 {
		t.Fatalf("counts = %d,%d", q, p)
	}
}

func BenchmarkTableBlockedMiss(b *testing.B) {
	tb := NewTable()
	tb.Set(99, StateQuarantined)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tb.Blocked(uint64(i) | 1<<40) {
			b.Fatal("unexpected block")
		}
	}
}

func BenchmarkDetectorObserve(b *testing.B) {
	d := NewDetector(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(uint64(i%64), 1.0)
	}
}
