// Package qoadvisor_test is the reproduction benchmark harness: one
// benchmark per table and figure of the paper's evaluation (§5), plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// benchmark regenerates its experiment on the simulated SCOPE substrate
// and reports the reproduction statistics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same quantities the paper's tables and figures carry.
package qoadvisor_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/bandit"
	"qoadvisor/internal/core"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/experiments"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/replicate"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/span"
	"qoadvisor/internal/wal"
	"qoadvisor/internal/workload"
)

// benchConfig sizes the benchmark experiments: smaller than the Full
// reproduction run (see cmd/experiments) but large enough that shapes are
// visible in the reported metrics.
var benchConfig = experiments.Config{Seed: 42, NumTemplates: 24, AARuns: 8}

var (
	labOnce sync.Once
	labInst *experiments.Lab
	labErr  error
)

// sharedLab returns a lazily built lab shared by read-only benchmarks
// (the per-job compilation cache warms across benchmarks).
func sharedLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		labInst, labErr = experiments.NewLab(benchConfig)
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return labInst
}

// --- Figures 2-5: stability and variance ---

func BenchmarkFigure2RecurringLatencyStability(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Stability("latency")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracRegressed, "fracRegressedWeek1")
		b.ReportMetric(float64(len(res.Points)), "jobs")
	}
}

func BenchmarkFigure3LatencyVariance(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Variance("latency")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracAbove5, "fracAbove5pct")
		b.ReportMetric(res.MedianCV, "medianCV")
	}
}

func BenchmarkFigure4RecurringPNHoursStability(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Stability("pnhours")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracRegressed, "fracRegressedWeek1")
		b.ReportMetric(float64(len(res.Points)), "jobs")
	}
}

func BenchmarkFigure5PNHoursVariance(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Variance("pnhours")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracAbove5, "fracAbove5pct")
		b.ReportMetric(res.MedianCV, "medianCV")
	}
}

// --- Figures 6-8: estimated cost vs runtime, I/O correlations ---

func BenchmarkFigure6CostVsLatency(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.CostVsLatency()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pearson, "pearson")
		b.ReportMetric(res.FracRegressedAmongImproved, "fracLatencyRegressed")
	}
}

func BenchmarkFigure7DataReadCorrelation(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.IOCorrelation("read")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pearson, "pearson")
		b.ReportMetric(res.TrendSlope, "trendSlope")
	}
}

func BenchmarkFigure8DataWrittenCorrelation(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.IOCorrelation("written")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pearson, "pearson")
		b.ReportMetric(res.TrendSlope, "trendSlope")
	}
}

// --- Figure 9: validation model accuracy ---

func BenchmarkFigure9ValidationAccuracy(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.ValidationAccuracy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AcceptedCount), "accepted")
		b.ReportMetric(res.FracActualBelowT, "precisionBelowThreshold")
		b.ReportMetric(res.FracActualBelow0, "precisionBelow0")
	}
}

// --- Table 2 and Figures 10-12: the deployed pipeline's impact ---

func BenchmarkTable2AggregateImprovement(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Aggregate(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PNHoursReduction, "pnhoursReduction")
		b.ReportMetric(res.LatencyReduction, "latencyReduction")
		b.ReportMetric(res.VerticesReduction, "verticesReduction")
		b.ReportMetric(float64(res.MatchedJobs), "matchedJobs")
	}
}

func BenchmarkFigure10PNHoursDeltaDistribution(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Aggregate(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracPNImproved, "fracImproved")
		b.ReportMetric(res.BestPNDelta, "bestDelta")
		b.ReportMetric(res.WorstPNDelta, "worstDelta")
	}
}

func BenchmarkFigure11LatencyDeltaDistribution(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Aggregate(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracLatencyImproved, "fracImproved")
		b.ReportMetric(res.BestLatencyDelta, "bestDelta")
		b.ReportMetric(res.WorstLatencyDelta, "worstDelta")
	}
}

func BenchmarkFigure12VerticesDeltaDistribution(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Aggregate(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestVertexDelta, "bestDelta")
		b.ReportMetric(res.WorstVertexDelta, "worstDelta")
	}
}

// --- Table 3: biased randomization ---

func BenchmarkTable3RandomVsCB(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		res, err := lab.Table3(8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Random.LowerCost), "randomLower")
		b.ReportMetric(float64(res.CB.LowerCost), "cbLower")
		b.ReportMetric(float64(res.Random.Failures), "randomFailures")
		b.ReportMetric(float64(res.CB.Failures), "cbFailures")
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationMultiFlip compares the single-flip action space against
// greedily stacked two-flip configurations — the paper's §8 future-work
// direction ("in future work we will propose multiple rule flips").
func BenchmarkAblationMultiFlip(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 17, NumTemplates: 16})
	if err != nil {
		b.Fatal(err)
	}
	cat := rules.NewCatalog()
	for i := 0; i < b.N; i++ {
		singleWins, doubleWins := 0, 0
		var singleGain, doubleGain float64
		var recompiles int
		for _, tpl := range gen.Templates() {
			job, err := tpl.Instantiate(1, 0)
			if err != nil {
				continue
			}
			opts := optimizer.Options{Catalog: cat, Stats: job.Stats, Tokens: job.Tokens}
			sp, err := span.Compute(job.Graph, cat, span.Options{Optimizer: opts})
			if err != nil || sp.Span.IsEmpty() {
				continue
			}
			one, err := core.GreedyMultiFlip(cat, job, sp.Span, 1)
			if err != nil {
				continue
			}
			two, err := core.GreedyMultiFlip(cat, job, sp.Span, 2)
			if err != nil {
				continue
			}
			recompiles += two.Recompilations
			if len(one.Flips) > 0 {
				singleWins++
				singleGain += -one.CostDelta()
			}
			if len(two.Flips) > 0 {
				doubleWins++
				doubleGain += -two.CostDelta()
			}
		}
		b.ReportMetric(float64(singleWins), "singleFlipWins")
		b.ReportMetric(float64(doubleWins), "twoFlipWins")
		b.ReportMetric(singleGain, "singleGainSum")
		b.ReportMetric(doubleGain, "twoFlipGainSum")
		b.ReportMetric(float64(recompiles), "recompilations")
	}
}

// BenchmarkAblationFeaturization compares span co-occurrence context
// features against a plan-level-only context (§6: span features were
// critical; plan featurizations were "mostly ineffective").
func BenchmarkAblationFeaturization(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 23, NumTemplates: 16, MaxDailyInstances: 2})
	if err != nil {
		b.Fatal(err)
	}
	cat := rules.NewCatalog()
	featurize := makeFeaturizer(b, gen, cat)

	for i := 0; i < b.N; i++ {
		evalLower := func(basic bool) float64 {
			cb := core.NewCBRecommender(cat, 31)
			cb.BasicContext = basic
			cb.Uniform = true
			for day := 1; day <= 10; day++ {
				core.Recommend(cb, cat, featurize(day))
				cb.Train()
			}
			cb.Uniform = false
			lower := 0
			for _, r := range core.Recommend(cb, cat, featurize(11)) {
				if !r.NoOp && !r.CompileFailed && r.CostDelta < 0 {
					lower++
				}
			}
			return float64(lower)
		}
		b.ReportMetric(evalLower(false), "spanFeatureLower")
		b.ReportMetric(evalLower(true), "basicFeatureLower")
	}
}

// BenchmarkAblationNoCostGate reproduces the §5.2 experiment that disabled
// all estimated-cost filters: without the cost gate, flighting processes
// arbitrarily bad plans and its time budget explodes ("after three days,
// QO-Advisor was not able to complete flighting").
func BenchmarkAblationNoCostGate(b *testing.B) {
	gen, err := workload.New(workload.Config{Seed: 29, NumTemplates: 16})
	if err != nil {
		b.Fatal(err)
	}
	cat := rules.NewCatalog()
	cluster := exec.DefaultCluster(29)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < b.N; i++ {
		var gatedHours, ungatedHours float64
		for _, tpl := range gen.Templates() {
			job, err := tpl.Instantiate(1, 0)
			if err != nil {
				continue
			}
			opts := optimizer.Options{Catalog: cat, Stats: job.Stats, Tokens: job.Tokens}
			sp, err := span.Compute(job.Graph, cat, span.Options{Optimizer: opts})
			if err != nil || sp.Span.IsEmpty() {
				continue
			}
			base, err := optimizer.Optimize(job.Graph, cat.DefaultConfig(), opts)
			if err != nil {
				continue
			}
			bits := sp.Span.Bits()
			flip := cat.FlipFor(bits[rng.Intn(len(bits))])
			res, err := optimizer.Optimize(job.Graph, cat.DefaultConfig().WithFlip(flip), opts)
			if err != nil {
				continue
			}
			m := exec.Run(res.Plan, job.Truth, job.Stats, cluster, int64(i))
			ungatedHours += m.LatencySec / 3600
			if res.EstCost < base.EstCost { // the cost gate
				gatedHours += m.LatencySec / 3600
			}
		}
		b.ReportMetric(gatedHours, "gatedFlightHours")
		b.ReportMetric(ungatedHours, "ungatedFlightHours")
	}
}

// BenchmarkAblationValidationThreshold sweeps the validation threshold,
// the paper's aggressiveness knob (§4.3), reporting acceptance volume and
// precision at each setting.
func BenchmarkAblationValidationThreshold(b *testing.B) {
	lab := sharedLab(b)
	for i := 0; i < b.N; i++ {
		for _, threshold := range []float64{-0.02, -0.05, -0.10} {
			res, err := lab.ValidationSweep(threshold)
			if err != nil {
				b.Fatal(err)
			}
			name := "accepted@-0.02"
			prec := "precision@-0.02"
			switch threshold {
			case -0.05:
				name, prec = "accepted@-0.05", "precision@-0.05"
			case -0.10:
				name, prec = "accepted@-0.10", "precision@-0.10"
			}
			b.ReportMetric(float64(res.AcceptedCount), name)
			b.ReportMetric(res.FracActualBelow0, prec)
		}
	}
}

// --- Online steering serve path (internal/serve) ---
//
// These benchmarks baseline the production-facing layer: cached hint
// lookups must stay nanosecond-scale, bandit ranks must scale with
// GOMAXPROCS (run with -cpu 1,2,4,8 to see the scaling curve), and the
// async reward pipeline must drain faster than rewards arrive.

// benchServeHints builds n synthetic hints over distinct template hashes.
func benchServeHints(cat *rules.Catalog, n int) []sis.Hint {
	hints := make([]sis.Hint, n)
	for i := range hints {
		hints[i] = sis.Hint{
			TemplateHash: uint64(i)*0x9e3779b97f4a7c15 + 1,
			TemplateID:   "T",
			Flip:         cat.FlipFor(40 + i%64),
			Day:          1,
		}
	}
	return hints
}

// BenchmarkServeCachedHintLookup measures the serving fast path: a rank
// request whose template has a validated hint in the sharded cache.
func BenchmarkServeCachedHintLookup(b *testing.B) {
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{Catalog: cat, Seed: 1})
	defer srv.Close()
	const numHints = 10000
	hints := benchServeHints(cat, numHints)
	if _, err := srv.InstallHints(hints); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := api.RankRequest{TemplateHash: api.TemplateHash(hints[i%numHints].TemplateHash), Span: []int{40}}
			resp, err := srv.Rank(req)
			if err != nil {
				b.Error(err)
				return
			}
			if resp.Source != api.SourceHint {
				b.Errorf("cache miss for installed hint %x", req.TemplateHash)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(srv.Cache().Size()), "cachedHints")
}

// benchCachedHintRank is the shared body of the drift-overhead A/B
// pair: rank requests that always hit the hint cache, the path the
// safeguard's ±3%/0-alloc budget governs.
func benchCachedHintRank(b *testing.B, srv *serve.Server, hints []sis.Hint) {
	b.Helper()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := api.RankRequest{TemplateHash: api.TemplateHash(hints[i%len(hints)].TemplateHash), Span: []int{40}}
			resp, err := srv.Rank(req)
			if err != nil {
				b.Error(err)
				return
			}
			if resp.Source != api.SourceHint {
				b.Errorf("cache miss for installed hint %x", req.TemplateHash)
				return
			}
			i++
		}
	})
}

// BenchmarkServeCachedHintDriftOff is the drift-overhead baseline arm:
// the identical cached-hint workload with the safeguard left at its
// default (no detector, empty enforcement table — one atomic nil-load
// per rank).
func BenchmarkServeCachedHintDriftOff(b *testing.B) {
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{Catalog: cat, Seed: 1})
	defer srv.Close()
	hints := benchServeHints(cat, 10000)
	if _, err := srv.InstallHints(hints); err != nil {
		b.Fatal(err)
	}
	benchCachedHintRank(b, srv, hints)
}

// BenchmarkServeCachedHintDriftOn is the treatment arm: drift
// detection enabled and a populated quarantine table (64 OTHER
// templates held), so every cached-hint rank pays the full enforcement
// check — atomic load plus a map probe that misses.
func BenchmarkServeCachedHintDriftOn(b *testing.B) {
	cat := rules.NewCatalog()
	dc := drift.DefaultConfig()
	srv := serve.New(serve.Config{Catalog: cat, Seed: 1, Drift: &dc})
	defer srv.Close()
	hints := benchServeHints(cat, 10000)
	if _, err := srv.InstallHints(hints); err != nil {
		b.Fatal(err)
	}
	quarantined := make(map[uint64]drift.State, 64)
	for i := 0; i < 64; i++ {
		quarantined[uint64(i)*0x9e3779b97f4a7c15+2] = drift.StateQuarantined // +2: disjoint from the hint hashes
	}
	srv.RestoreQuarantines(quarantined)
	benchCachedHintRank(b, srv, hints)
}

// BenchmarkServeConcurrentRank measures bandit-path rank throughput under
// request concurrency: scoring shares a read lock, so throughput should
// scale across GOMAXPROCS until the rng/event-log critical sections bite.
func BenchmarkServeConcurrentRank(b *testing.B) {
	srv := serve.New(serve.Config{Seed: 1})
	defer srv.Close()
	spans := [][]int{
		{3, 17, 40, 77},
		{5, 21, 60, 100, 130},
		{8, 9, 44, 91},
		{12, 30, 71, 150, 200, 201},
	}
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			req := api.RankRequest{
				TemplateHash: api.TemplateHash(n), // no hint installed: always the bandit path
				Span:         spans[n%uint64(len(spans))],
				RowCount:     float64(uint64(1) << (n % 20)),
			}
			if _, err := srv.Rank(req); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServeRewardIngestionDrain measures the async reward pipeline
// end to end: enqueue a batch of rewards for logged rank events, then
// drain it through the worker pool into IPS training.
func BenchmarkServeRewardIngestionDrain(b *testing.B) {
	const batch = 512
	srv := serve.New(serve.Config{Seed: 1, QueueSize: batch, TrainEvery: 64})
	defer srv.Close()
	req := api.RankRequest{TemplateHash: 1, Span: []int{3, 17, 40}}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ids := make([]string, batch)
		for j := range ids {
			resp, err := srv.Rank(req)
			if err != nil {
				b.Fatal(err)
			}
			ids[j] = resp.EventID
		}
		b.StartTimer()
		for _, id := range ids {
			for !srv.RewardAsync(id, 1.5) {
				// Queue full: the workers are mid-drain, retry.
			}
		}
		srv.Ingestor().Drain()
	}
	st := srv.Ingestor().Stats()
	b.ReportMetric(float64(st.Applied)/float64(b.N), "rewards/drain")
	b.ReportMetric(float64(st.TrainRuns)/float64(b.N), "trainRuns/drain")
}

// BenchmarkServeBatchRankHTTP measures the versioned protocol end to
// end: a /v2/rank batch through the typed client (JSON encode, HTTP
// round trip, server-side fan-out over the rank pool, JSON decode),
// reported per job. Half the batch hits the hint cache, half takes the
// bandit path — the mixed steady state of a production rollover.
func BenchmarkServeBatchRankHTTP(b *testing.B) {
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{Catalog: cat, Seed: 1})
	defer srv.Close()
	const numHints = 1024
	if _, err := srv.InstallHints(benchServeHints(cat, numHints)); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	for _, batchSize := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("batch=%d", batchSize), func(b *testing.B) {
			jobs := make([]api.RankRequest, batchSize)
			for i := range jobs {
				if i%2 == 0 { // hint path
					jobs[i] = api.RankRequest{
						TemplateHash: api.TemplateHash(uint64(i/2%numHints)*0x9e3779b97f4a7c15 + 1),
						Span:         []int{40 + (i / 2 % 64)},
					}
				} else { // bandit path
					jobs[i] = api.RankRequest{
						TemplateHash: api.TemplateHash(uint64(i)<<32 | 0xbad),
						Span:         []int{3, 17, 40 + i%64},
						RowCount:     float64(1000 * i),
					}
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				resp, err := cl.RankBatch(ctx, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Results) != batchSize {
					b.Fatalf("got %d results for %d jobs", len(resp.Results), batchSize)
				}
			}
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkServeHintRollover measures the pipeline rollover hot swap:
// building and installing a fresh sharded table (Replace pre-sizes each
// shard map to its expected share, so the build avoids incremental map
// growth).
func BenchmarkServeHintRollover(b *testing.B) {
	cat := rules.NewCatalog()
	for _, size := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("hints=%d", size), func(b *testing.B) {
			hints := benchServeHints(cat, size)
			cache := serve.NewHintCache(0)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cache.Replace(hints)
			}
			b.StopTimer()
			if cache.Size() != size {
				b.Fatalf("cache size = %d, want %d", cache.Size(), size)
			}
			b.ReportMetric(float64(size)/(b.Elapsed().Seconds()/float64(b.N))/1e6, "Mhints/s")
		})
	}
}

// makeFeaturizer builds the shared job featurization used by the
// featurization ablation.
func makeFeaturizer(b *testing.B, gen *workload.Generator, cat *rules.Catalog) func(day int) []*core.JobFeatures {
	b.Helper()
	spanCache := make(map[uint64]rules.Bitset)
	return func(day int) []*core.JobFeatures {
		jobs, err := gen.JobsForDay(day)
		if err != nil {
			b.Fatal(err)
		}
		var out []*core.JobFeatures
		for _, job := range jobs {
			opts := optimizer.Options{Catalog: cat, Stats: job.Stats, Tokens: job.Tokens}
			sp, ok := spanCache[job.Template.Hash]
			if !ok {
				res, err := span.Compute(job.Graph, cat, span.Options{Optimizer: opts})
				if err != nil {
					spanCache[job.Template.Hash] = rules.Bitset{}
					continue
				}
				sp = res.Span
				spanCache[job.Template.Hash] = sp
			}
			if sp.IsEmpty() {
				continue
			}
			base, err := optimizer.Optimize(job.Graph, cat.DefaultConfig(), opts)
			if err != nil {
				continue
			}
			out = append(out, &core.JobFeatures{
				Job: job, EstCost: base.EstCost, Span: sp,
				RowCount: base.Plan.Roots[0].EstRows,
			})
		}
		return out
	}
}

// --- Pipeline + bandit hot-path benchmarks (PR 2) ---

// benchPipelineInputs builds one production day's jobs and workload view,
// the pure inputs every BenchmarkPipelineDay iteration replays.
func benchPipelineInputs(b *testing.B, numTemplates int) (*rules.Catalog, []*workload.Job, []workload.ViewRow) {
	b.Helper()
	cat := rules.NewCatalog()
	gen, err := workload.New(workload.Config{Seed: 9, NumTemplates: numTemplates, MaxDailyInstances: 2})
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := gen.JobsForDay(1)
	if err != nil {
		b.Fatal(err)
	}
	prod := core.NewProduction(cat, sis.NewStore(cat), exec.DefaultCluster(1), 3)
	_, view, err := prod.RunDay(1, jobs)
	if err != nil {
		b.Fatal(err)
	}
	return cat, jobs, view
}

// BenchmarkPipelineDay measures one full advisor day (Feature Generation →
// Recommendation → Recompilation → Flighting → Validation → upload) with
// the worker pools pinned sequential vs fanned across GOMAXPROCS. Each
// iteration builds a fresh advisor, so the compile cache starts cold and
// the two arms do identical work; parallel output is bit-identical to
// sequential (TestParallelRunDayDeterministic).
func BenchmarkPipelineDay(b *testing.B) {
	cat, jobs, view := benchPipelineInputs(b, 48)
	run := func(b *testing.B, parallelism, cacheSize int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			adv := core.NewAdvisor(cat, sis.NewStore(cat), core.Config{
				Seed:                 1,
				MinValidationSamples: 5,
				Parallelism:          parallelism,
				CompileCacheSize:     cacheSize,
				Flighting:            flighting.Config{Catalog: cat, Seed: 2},
			})
			if _, err := adv.RunDay(1, jobs, view); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential-nocache", func(b *testing.B) { run(b, 1, -1) })
	b.Run("sequential", func(b *testing.B) { run(b, 1, 0) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { run(b, 0, 0) })
}

// benchSpanFeatures is a realistic 8-bit job span for featurization
// benchmarks (large enough that the pair/triple crosses dominate).
func benchSpanFeatures() *core.JobFeatures {
	var f core.JobFeatures
	for _, bit := range []int{3, 9, 17, 24, 31, 40, 52, 63} {
		f.Span.Set(bit)
	}
	f.RowCount = 1e7
	f.BytesRead = 1e10
	return &f
}

// BenchmarkContextFeatures measures building the bandit context: the
// pre-hashed integer-mixing path the pipeline uses vs the legacy
// fmt.Sprintf string-token featurization it replaced.
func BenchmarkContextFeatures(b *testing.B) {
	f := benchSpanFeatures()
	b.Run("prehashed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.ContextFeatures(f)
		}
	})
	b.Run("legacy-strings", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = core.LegacyContextFeatures(f)
		}
	})
}

// BenchmarkBanditRank measures one Rank decision. The prehashed arm is
// the pipeline/serve hot path: context and actions carry pre-hashed IDs,
// so Rank mixes integers without touching a string. The seed-strings arm
// reproduces the seed's per-rank cost: fmt.Sprintf featurization plus
// per-rank FNV hashing of every token inside Rank.
func BenchmarkBanditRank(b *testing.B) {
	cat := rules.NewCatalog()
	f := benchSpanFeatures()
	cfg := bandit.DefaultConfig(1)
	cfg.MaxLogEvents = 4096

	b.Run("prehashed", func(b *testing.B) {
		svc := bandit.New(cfg)
		ctx := core.ContextFeatures(f)
		actions, _ := core.ActionsFor(cat, f)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Rank(ctx, actions); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seed-strings", func(b *testing.B) {
		svc := bandit.New(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := bandit.Context{Features: core.LegacyContextFeatures(f).Features}
			actions := make([]bandit.Action, 0, len(f.Span.Bits())+1)
			actions = append(actions, bandit.Action{ID: "noop", Features: []string{"act:noop"}})
			for _, bit := range f.Span.Bits() {
				r := cat.Rule(bit)
				actions = append(actions, bandit.Action{
					ID: fmt.Sprintf("flip:%d", bit),
					Features: []string{
						fmt.Sprintf("rule:%d", r.ID),
						fmt.Sprintf("kind:%d", r.Kind),
						fmt.Sprintf("cat:%d", r.Category),
						fmt.Sprintf("kinddir:%d,%v", r.Kind, cat.FlipFor(bit).Enable),
					},
				})
			}
			if _, err := svc.Rank(ctx, actions); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppend measures the durable reward journal's raw append
// path per durability mode: off (buffer only), async (group-commit
// window in the background), and sync (the caller waits for the group
// fsync — run with -cpu to see group commit amortize concurrent
// committers into shared syncs).
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, mode := range []wal.Mode{wal.ModeOff, wal.ModeAsync, wal.ModeSync} {
		b.Run("mode="+mode.String(), func(b *testing.B) {
			w, err := wal.Open(wal.Options{Dir: b.TempDir(), Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					lsn, err := w.Append(payload)
					if err != nil {
						b.Error(err)
						return
					}
					if err := w.Commit(lsn); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := w.Stats()
			b.ReportMetric(float64(st.Appends)/b.Elapsed().Seconds(), "appends/s")
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "syncs/append")
			}
		})
	}
}

// BenchmarkRewardDurable measures the full batch-rank/reward serving
// cycle end to end — one /v2/rank batch through the typed client, the
// matching /v2/reward batch, and the drain into IPS training — per
// journal durability mode, against the in-memory baseline (wal=none,
// the PR 3 configuration). This is the production steady state every
// reward implies (a reward only exists for a ranked event), so the
// journal's cost — rank records under the event-log mutex, the reward
// batch record journaled before the 202, and the group-commit fsyncs
// timesharing the host — is charged against the whole cycle, not
// smuggled into an idle window. The acceptance bar for the WAL
// subsystem is async group-commit sustaining >= 80% of the in-memory
// pairs/s.
func BenchmarkRewardDurable(b *testing.B) {
	const batch = 256
	run := func(b *testing.B, j *wal.WAL) {
		srv := serve.New(serve.Config{Seed: 1, QueueSize: 4 * batch, TrainEvery: 64, WAL: j})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		cl := client.New(ts.URL)
		ctx := context.Background()

		jobs := make([]api.RankRequest, batch)
		for i := range jobs {
			jobs[i] = api.RankRequest{
				TemplateHash: api.TemplateHash(uint64(i)<<20 | 0xd00d), // no hints: bandit path
				Span:         []int{3 + i%40, 60 + i%50, 120 + i%30},
				RowCount:     float64(1000 * (i + 1)),
			}
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			ranked, err := cl.RankBatch(ctx, jobs)
			if err != nil {
				b.Fatal(err)
			}
			events := make([]api.RewardEvent, batch)
			for i, res := range ranked.Results {
				if res.Error != nil || res.EventID == "" {
					b.Fatalf("job %d: %+v", i, res)
				}
				v := 1.5
				events[i] = api.RewardEvent{EventID: res.EventID, Reward: &v}
			}
			resp, err := cl.RewardBatch(ctx, events)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Queued != batch {
				b.Fatalf("queued %d of %d: %+v", resp.Queued, batch, resp.Rejected)
			}
			srv.Ingestor().Drain()
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "pairs/s")
		if j != nil {
			st := j.Stats()
			b.ReportMetric(float64(st.Syncs)/float64(b.N), "syncs/batch")
			b.ReportMetric(float64(st.AppendedBytes)/float64(b.N*batch), "walB/pair")
		}
	}

	b.Run("wal=none", func(b *testing.B) { run(b, nil) })
	for _, mode := range []wal.Mode{wal.ModeOff, wal.ModeAsync, wal.ModeSync} {
		b.Run("wal="+mode.String(), func(b *testing.B) {
			j, err := wal.Open(wal.Options{Dir: b.TempDir(), Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			run(b, j)
		})
	}
}

// BenchmarkWALRecovery measures rebuilding a model from the journal —
// the startup cost a crash adds — per 10k-record journal.
func BenchmarkWALRecovery(b *testing.B) {
	dir := b.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeOff})
	if err != nil {
		b.Fatal(err)
	}
	svc := bandit.New(bandit.DefaultConfig(1))
	svc.AttachJournal(j)
	ctx := bandit.Context{IDs: []uint64{0x11, 0x22, 0x33}}
	actions := []bandit.Action{{IDs: []uint64{1}}, {IDs: []uint64{2}}, {IDs: []uint64{3}}}
	var entries []bandit.RewardEntry
	for i := 0; i < 5000; i++ {
		r, err := svc.Rank(ctx, actions)
		if err != nil {
			b.Fatal(err)
		}
		entries = append(entries, bandit.RewardEntry{EventID: r.EventID, Value: 1.0})
		if len(entries) == 64 {
			if _, err := j.Append(bandit.EncodeRewardBatch(entries)); err != nil {
				b.Fatal(err)
			}
			entries = entries[:0]
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	records := 5000 + 5000/64

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		rec, err := serve.Recover(wal.DirSource{Dir: dir}, "", 256, 0, 9)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Journal.Records != int64(records) {
			b.Fatalf("replayed %d records, want %d", rec.Journal.Records, records)
		}
	}
	b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWALStream measures the replication ship path: a follower
// catching up over HTTP from a journal of framed rank/reward records.
// One op = one full catch-up of the journal (reconnect + stream +
// CRC-verify every frame); records/s is the shipping rate a follower
// can ingest from a primary on this host.
func BenchmarkWALStream(b *testing.B) {
	dir := b.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeOff})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	srv := serve.New(serve.Config{Seed: 3, WAL: j})
	defer srv.Close()

	// A realistic record mix: rank records with resolved feature IDs,
	// reward batches every 64 ranks.
	svc := srv.Bandit()
	ctx := bandit.Context{IDs: []uint64{0x11, 0x22, 0x33, 0x44}}
	actions := []bandit.Action{{IDs: []uint64{1}}, {IDs: []uint64{2}}, {IDs: []uint64{3}}}
	var entries []bandit.RewardEntry
	const ranks = 20000
	for i := 0; i < ranks; i++ {
		r, err := svc.Rank(ctx, actions)
		if err != nil {
			b.Fatal(err)
		}
		entries = append(entries, bandit.RewardEntry{EventID: r.EventID, Value: 1.0})
		if len(entries) == 64 {
			if _, err := j.Append(bandit.EncodeRewardBatch(entries)); err != nil {
				b.Fatal(err)
			}
			entries = entries[:0]
		}
	}
	if err := j.Sync(); err != nil {
		b.Fatal(err)
	}
	records := j.LastLSN()

	ts := httptest.NewServer(srv)
	defer ts.Close()
	hc := &http.Client{}
	var bytesShipped int64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		resp, err := hc.Get(fmt.Sprintf("%s%s?from=0&wait=1", ts.URL, api.RouteV2WAL))
		if err != nil {
			b.Fatal(err)
		}
		var got uint64
		for {
			lsn, payload, err := api.ReadWALFrame(resp.Body)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			got = lsn
			bytesShipped += int64(len(payload) + api.WALFrameHeaderSize)
		}
		resp.Body.Close()
		if got != records {
			b.Fatalf("stream ended at LSN %d, journal has %d", got, records)
		}
	}
	b.ReportMetric(float64(uint64(b.N)*records)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(bytesShipped)/b.Elapsed().Seconds()/(1<<20), "MiB/s")
}

// BenchmarkFollowerRank measures the read-scaled serving path this PR
// exists for: /v2/rank batches answered by a live follower from its
// replicated hint table and model, compared head-to-head with the
// primary answering the identical batch. The follower's bandit path is
// RankGreedy — no event log append, no rng — so its rank cost bounds
// the fleet's per-replica read capacity.
func BenchmarkFollowerRank(b *testing.B) {
	const batch = 256
	cat := rules.NewCatalog()

	setup := func(b *testing.B) (*httptest.Server, *httptest.Server, func()) {
		dir := b.TempDir()
		j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeAsync})
		if err != nil {
			b.Fatal(err)
		}
		primary := serve.New(serve.Config{Catalog: cat, Seed: 5, WAL: j})
		pts := httptest.NewServer(primary)
		hints := make([]sis.Hint, 512)
		for i := range hints {
			hints[i] = sis.Hint{TemplateHash: uint64(0x4000 + i), TemplateID: fmt.Sprintf("T%d", i), Flip: cat.FlipFor(40 + i%40), Day: 1}
		}
		if _, err := primary.InstallHints(hints); err != nil {
			b.Fatal(err)
		}
		f, err := replicate.Start(replicate.Config{Primary: pts.URL, Catalog: cat, Seed: 6, PollWait: 100 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.WaitCaughtUp(context.Background(), 10*time.Second); err != nil {
			b.Fatal(err)
		}
		fts := httptest.NewServer(f)
		return pts, fts, func() {
			fts.Close()
			f.Close()
			pts.Close()
			primary.Close()
			j.Close()
		}
	}

	jobs := make([]api.RankRequest, batch)
	for i := range jobs {
		hash := uint64(0x4000 + i%512) // hint hits
		if i%4 == 3 {
			hash = uint64(0xdead0000 + i) // bandit path
		}
		jobs[i] = api.RankRequest{
			TemplateHash: api.TemplateHash(hash),
			Span:         []int{2 + i%40, 60 + i%50, 130 + i%40},
			RowCount:     float64(300 * (i + 1)),
		}
	}

	pts, fts, cleanup := setup(b)
	defer cleanup()
	for _, node := range []struct {
		name string
		url  string
	}{{"node=primary", pts.URL}, {"node=follower", fts.URL}} {
		b.Run(node.name, func(b *testing.B) {
			cl := client.New(node.url)
			ctx := context.Background()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				resp, err := cl.RankBatch(ctx, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if len(resp.Results) != batch {
					b.Fatalf("got %d results", len(resp.Results))
				}
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "ranks/s")
		})
	}
}

// BenchmarkClusterRank measures aggregate rank throughput as serving
// nodes are added: the same batch workload pushed through a 1-node
// client and through a rotation over primary + follower. On a
// multi-core host the second node adds capacity; on a single-CPU
// container the nodes timeshare one core and the benchmark records the
// rotation's distribution overhead instead (see BENCH_replicate.json's
// host note).
func BenchmarkClusterRank(b *testing.B) {
	const batch = 256
	cat := rules.NewCatalog()
	dir := b.TempDir()
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeAsync})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	primary := serve.New(serve.Config{Catalog: cat, Seed: 5, WAL: j})
	defer primary.Close()
	pts := httptest.NewServer(primary)
	defer pts.Close()
	hints := make([]sis.Hint, 512)
	for i := range hints {
		hints[i] = sis.Hint{TemplateHash: uint64(0x4000 + i), TemplateID: fmt.Sprintf("T%d", i), Flip: cat.FlipFor(40 + i%40), Day: 1}
	}
	if _, err := primary.InstallHints(hints); err != nil {
		b.Fatal(err)
	}
	f, err := replicate.Start(replicate.Config{Primary: pts.URL, Catalog: cat, Seed: 6, PollWait: 100 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitCaughtUp(context.Background(), 10*time.Second); err != nil {
		b.Fatal(err)
	}
	fts := httptest.NewServer(f)
	defer fts.Close()

	jobs := make([]api.RankRequest, batch)
	for i := range jobs {
		jobs[i] = api.RankRequest{
			TemplateHash: api.TemplateHash(uint64(0x4000 + i%512)),
			Span:         []int{2 + i%40, 60 + i%50},
			RowCount:     float64(100 * (i + 1)),
		}
	}

	for _, tc := range []struct {
		name      string
		endpoints []string
	}{
		{"nodes=1", []string{pts.URL}},
		{"nodes=2", []string{pts.URL, fts.URL}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cc, err := client.NewCluster(tc.endpoints)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			// Concurrent submitters, as a fleet of SCOPE compile frontends
			// would drive the cluster.
			workers := 4
			b.ResetTimer()
			var total atomic.Int64
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 0; n < per; n++ {
						resp, err := cc.RankBatch(ctx, jobs)
						if err != nil {
							b.Error(err)
							return
						}
						total.Add(int64(len(resp.Results)))
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(total.Load())/b.Elapsed().Seconds(), "ranks/s")
		})
	}
}

// --- Incident flight recorder: tail-retention A/B + capture latency ---

// benchFlightBatchRank is the shared body of the tail-retention A/B
// pair: a mixed 16-job /v2/rank batch through the HTTP layer — the
// instrumented path where the flight recorder begins and finishes
// every request. All requests answer far under the rank slow
// threshold, so nothing is retained and the On arm prices exactly the
// unretained fast path (pooled span buffer in, spans recorded,
// buffer back to the pool). Run with -benchmem: the retention-off and
// retention-on allocs/op must match.
func benchFlightBatchRank(b *testing.B, srv *serve.Server) {
	b.Helper()
	const batchSize = 16
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()
	jobs := make([]api.RankRequest, batchSize)
	for i := range jobs {
		jobs[i] = api.RankRequest{
			TemplateHash: api.TemplateHash(uint64(i)<<32 | 0xbad),
			Span:         []int{3, 17, 40 + i%64},
			RowCount:     float64(1000 * i),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		resp, err := cl.RankBatch(ctx, jobs)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Results) != batchSize {
			b.Fatalf("got %d results for %d jobs", len(resp.Results), batchSize)
		}
	}
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "jobs/s")
	if fr := srv.FlightRecorder(); fr != nil {
		if st := fr.Stats(); st.Retained != 0 {
			b.Fatalf("benchmark retained %d traces; the A/B only prices the unretained path", st.Retained)
		}
	}
}

// BenchmarkServeBatchRankFlightOff is the baseline arm: tail retention
// disabled (TraceRetain -1), the pre-flight-recorder serving path.
func BenchmarkServeBatchRankFlightOff(b *testing.B) {
	srv := serve.New(serve.Config{Seed: 1, TraceRetain: -1})
	defer srv.Close()
	benchFlightBatchRank(b, srv)
}

// BenchmarkServeBatchRankFlightOn is the treatment arm: the default
// configuration, flight recorder on, every request carrying a pooled
// span buffer that is returned unretained.
func BenchmarkServeBatchRankFlightOn(b *testing.B) {
	srv := serve.New(serve.Config{Seed: 1})
	defer srv.Close()
	benchFlightBatchRank(b, srv)
}

// BenchmarkIncidentCapture measures one diagnostic-bundle capture end
// to end — goroutine + heap profiles, stats/traces/histograms JSON,
// meta — via the manual trigger (force bypasses the cooldown, so every
// iteration captures). This is the pause an incident costs the node.
func BenchmarkIncidentCapture(b *testing.B) {
	srv := serve.New(serve.Config{Seed: 1, Incidents: &serve.IncidentConfig{Dir: b.TempDir()}})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()
	// A little traffic so the bundle has real content.
	if _, err := cl.RankBatch(ctx, []api.RankRequest{{TemplateHash: 7, Span: []int{3, 17, 40}}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := cl.TriggerIncident(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
