// Steering audit: the journal as an explainability database — every
// question answered here is answered from WAL records alone, with no
// extra bookkeeping in the serving path.
//
// A WAL-backed primary serves a short day of steering: bandit ranks
// with attributed rewards for one template, hint rollovers that first
// steer and later drop another. The example then interrogates the
// journal through the /v2/audit endpoints:
//
//	phase 1  a day of steering      ranks, rewards, two hint rollovers
//	phase 2  why this decision?     /v2/audit/decision — rank, rewards,
//	                                training boundary, weight lineage
//	phase 3  who steered template?  /v2/audit/template — flip history
//	phase 4  time travel            /v2/audit/asof — reconstructed model
//	                                byte-identical to a live checkpoint
//
// Phase 4 is the determinism contract in action: the as-of engine
// seeds from the nearest snapshot, replays the journal suffix through
// the same dispatch crash recovery uses, and must reproduce the live
// checkpoint's bytes exactly — sha256 compared below.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

const (
	tmplBandit = uint64(0xfeedface) // un-hinted: ranks flow through the bandit
	tmplHinted = uint64(0xa11ce)    // steered by hint rollovers
)

func main() {
	ctx := context.Background()
	// STEERING_AUDIT_DIR keeps the journal around after the run so the
	// offline CLI (qoserved -audit) can be pointed at it — CI uses this
	// to smoke the canned queries against a known journal.
	dir := os.Getenv("STEERING_AUDIT_DIR")
	if dir == "" {
		tmp, err := os.MkdirTemp("", "steering-audit-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	snap := filepath.Join(dir, "model.snap")

	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync})
	if err != nil {
		log.Fatal(err)
	}
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{
		Catalog: cat, Seed: 42, QueueSize: 1024, TrainEvery: 16,
		SnapshotPath: snap, WAL: j,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL)

	// --- Phase 1: a day of steering ---
	fmt.Println("== phase 1: a day of steering ==")
	if _, err := srv.InstallHints([]sis.Hint{
		{TemplateHash: tmplHinted, TemplateID: "T-H", Flip: cat.FlipFor(40), Day: 7},
	}); err != nil {
		log.Fatal(err)
	}
	var events []string
	for i := 0; i < 96; i++ {
		resp, err := cl.Rank(ctx, api.RankRequest{
			TemplateHash: api.TemplateHash(tmplBandit), Span: []int{5, 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, resp.EventID)
		v := 0.5 + 0.4*float64(i%2) // alternating observed speedups
		if _, err := cl.RewardBatch(ctx, []api.RewardEvent{
			{EventID: resp.EventID, Reward: &v},
		}); err != nil {
			log.Fatal(err)
		}
	}
	// A second rollover drops the hint — the lineage phase 3 reads.
	if _, err := srv.InstallHints(nil); err != nil {
		log.Fatal(err)
	}
	srv.Ingestor().Drain() // journal the training boundary
	fmt.Printf("served %d bandit ranks with rewards, 2 hint rollovers journaled\n", len(events))

	// --- Phase 2: why did this event get its decision? ---
	fmt.Println("\n== phase 2: decision trace ==")
	target := events[len(events)/2]
	tr, err := cl.AuditDecision(ctx, target)
	if err != nil {
		log.Fatal(err)
	}
	if !tr.Found {
		log.Fatal("BUG: journal lost the rank record")
	}
	fmt.Printf("event %s: ranked at lsn=%d prob=%.4f (%d context, %d action features)\n",
		tr.EventID, tr.RankLSN, tr.Prob, tr.CtxIDs, tr.ActIDs)
	for _, rw := range tr.Rewards {
		fmt.Printf("  reward lsn=%d value=%.2f\n", rw.LSN, rw.Value)
	}
	fmt.Printf("  trained at lsn=%d; %d lineage rewards shaped the weights it was scored with\n",
		tr.TrainedAtLSN, len(tr.Lineage))

	// --- Phase 3: which flips steered the hinted template? ---
	fmt.Println("\n== phase 3: template steering lineage ==")
	th, err := cl.AuditTemplate(ctx, api.TemplateHash(tmplHinted))
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range th.Events {
		switch ev.Kind {
		case "hint":
			fmt.Printf("  lsn=%d hint %s (day %d, generation %d)\n", ev.LSN, ev.Flip, ev.Day, ev.Gen)
		case "hint_removed":
			fmt.Printf("  lsn=%d hint removed (generation %d)\n", ev.LSN, ev.Gen)
		default:
			fmt.Printf("  lsn=%d %s\n", ev.LSN, ev.Kind)
		}
	}
	fmt.Printf("  %d events extracted from %d rollover records\n", len(th.Events), th.Rollovers)

	// --- Phase 4: time travel, checked byte-for-byte ---
	fmt.Println("\n== phase 4: as-of reconstruction vs live checkpoint ==")
	var live bytes.Buffer
	lsn, err := srv.BootstrapSnapshot(&live)
	if err != nil {
		log.Fatal(err)
	}
	want := sha256.Sum256(live.Bytes())
	res, err := cl.AuditAsOf(ctx, lsn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live checkpoint at lsn=%d: %d bytes, sha256=%s\n",
		lsn, live.Len(), hex.EncodeToString(want[:8]))
	fmt.Printf("as-of reconstruction:     %d bytes, sha256=%s (replayed %d records, %d training runs)\n",
		res.SnapshotBytes, res.SnapshotSHA256[:16], res.Replay.Records, res.Replay.TrainRuns)
	if res.SnapshotSHA256 != hex.EncodeToString(want[:]) {
		log.Fatal("BUG: as-of reconstruction diverged from the live checkpoint")
	}
	fmt.Println("byte-identical: the journal fully determines the model")

	// The server's audit counters confirm the queries above really ran
	// through the index-backed engine.
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if a := st.Audit; a != nil {
		fmt.Printf("\naudit totals: %d queries, %d/%d segments scanned/skipped, %d records scanned, %d sidecars built\n",
			a.Queries, a.SegmentsScanned, a.SegmentsSkipped, a.RecordsScanned, a.SidecarsBuilt)
	}
}
