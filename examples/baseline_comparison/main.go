// Baseline comparison: contextual-bandit recommendation versus the
// uniform-random baseline of §5.6. The CB is trained off-policy on
// uniform-at-random logged data, then both policies pick one flip per job
// on a fresh day and are scored on recompiled estimated cost — the
// protocol behind the paper's Table 3.
package main

import (
	"fmt"
	"log"

	"qoadvisor/internal/core"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/span"
	"qoadvisor/internal/workload"
)

func main() {
	const trainDays = 14
	gen, err := workload.New(workload.Config{Seed: 5, NumTemplates: 30, MaxDailyInstances: 2})
	if err != nil {
		log.Fatal(err)
	}
	cat := rules.NewCatalog()
	spanCache := make(map[uint64]rules.Bitset)

	featurize := func(day int) []*core.JobFeatures {
		jobs, err := gen.JobsForDay(day)
		if err != nil {
			log.Fatal(err)
		}
		var out []*core.JobFeatures
		for _, job := range jobs {
			opts := optimizer.Options{Catalog: cat, Stats: job.Stats, Tokens: job.Tokens}
			sp, ok := spanCache[job.Template.Hash]
			if !ok {
				res, err := span.Compute(job.Graph, cat, span.Options{Optimizer: opts})
				if err != nil {
					spanCache[job.Template.Hash] = rules.Bitset{}
					continue
				}
				sp = res.Span
				spanCache[job.Template.Hash] = sp
			}
			if sp.IsEmpty() {
				continue
			}
			base, err := optimizer.Optimize(job.Graph, cat.DefaultConfig(), opts)
			if err != nil {
				continue
			}
			out = append(out, &core.JobFeatures{
				Job: job, EstCost: base.EstCost, Span: sp,
				RowCount: base.Plan.Roots[0].EstRows,
			})
		}
		return out
	}

	// Train the bandit off-policy: uniform-at-random logging.
	cb := core.NewCBRecommender(cat, 11)
	cb.Uniform = true
	fmt.Printf("training contextual bandit off-policy for %d days", trainDays)
	for day := 1; day <= trainDays; day++ {
		core.Recommend(cb, cat, featurize(day))
		cb.Train()
		fmt.Print(".")
	}
	fmt.Println(" done")

	// Evaluate both policies on a fresh day.
	feats := featurize(trainDays + 1)
	cb.Uniform = false
	cbRecs := core.Recommend(cb, cat, feats)
	rnd := core.NewRandomRecommender(cat, 13)
	rndRecs := core.Recommend(rnd, cat, feats)

	show := func(label string, recs []*core.Recommendation) {
		lower, equal, higher, fails, noops := 0, 0, 0, 0, 0
		for _, r := range recs {
			switch {
			case r.NoOp:
				noops++
			case r.CompileFailed:
				fails++
			case r.CostDelta < 0:
				lower++
			case r.CostDelta == 0:
				equal++
			default:
				higher++
			}
		}
		fmt.Printf("%-18s lower=%-3d equal=%-3d higher=%-3d failures=%-3d noop=%-3d\n",
			label, lower, equal, higher, fails, noops)
	}
	fmt.Printf("\nevaluation on day %d (%d steerable jobs):\n", trainDays+1, len(feats))
	show("uniform random", rndRecs)
	show("contextual bandit", cbRecs)
	fmt.Println("\nWith enough logged data the learned policy finds more cost-lowering")
	fmt.Println("flips and avoids failures and cost-raising ones (the paper's Table 3);")
	fmt.Println("short training runs mostly teach it to avoid harm.")
}
