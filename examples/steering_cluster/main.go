// Steering cluster: QO-Advisor's serving layer scaled out to a
// primary/follower fleet via WAL-shipped replication.
//
// The offline pipeline trains a bandit and produces a validated hint
// table for a recurring workload; a WAL-backed primary then serves the
// steering surface while two followers bootstrap from its
// checkpoint-consistent snapshot (GET /v2/wal/snapshot) and tail its
// journal (GET /v2/wal) — rank decisions, reward batches, train marks,
// and hint rollovers all replicate in decision order. A cluster client
// fans reads across all three nodes and chases the not_primary
// redirect for writes.
//
// The example finishes by proving the replication contract:
//
//   - convergence: after catch-up, each follower's /v2/rank responses
//     are byte-identical to the primary's for the same request stream
//     (same jobs, same pinned request ID), and the replicated model is
//     byte-identical up to the watermark position;
//   - read scaling: the same rank workload is pushed through one node
//     and then through the three-node rotation, printing aggregate
//     throughput per topology.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/core"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/replicate"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
	"qoadvisor/internal/workload"
)

func main() {
	const days = 8
	ctx := context.Background()

	// --- Offline pipeline: train a bandit, produce hints ---
	gen, err := workload.New(workload.Config{Seed: 21, NumTemplates: 32, MaxDailyInstances: 2})
	if err != nil {
		log.Fatal(err)
	}
	cat := rules.NewCatalog()
	clusterExec := exec.DefaultCluster(21)
	store := sis.NewStore(cat)
	adv := core.NewAdvisor(cat, store, core.Config{
		Seed:      21,
		Flighting: flighting.Config{Catalog: cat, Cluster: clusterExec, Seed: 26},
	})
	prod := core.NewProduction(cat, store, clusterExec, 33)
	for day := 1; day <= days; day++ {
		adv.CB.Uniform = day <= 2
		jobs, err := gen.JobsForDay(day)
		if err != nil {
			log.Fatal(err)
		}
		_, view, err := prod.RunDay(day, jobs)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := adv.RunDay(day, jobs, view); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("pipeline: %d days trained, %d validated hints\n", days, store.Size())

	// --- Primary: WAL-backed serving node ---
	walDir, err := os.MkdirTemp("", "qoadvisor-cluster-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	journal, err := wal.Open(wal.Options{Dir: walDir, Mode: wal.ModeAsync})
	if err != nil {
		log.Fatal(err)
	}
	defer journal.Close()
	primary := serve.New(serve.Config{Catalog: cat, Bandit: adv.CB.Service, Seed: 21, WAL: journal})
	defer primary.Close()
	pts := httptest.NewServer(primary)
	defer pts.Close()
	if _, err := primary.InstallHints(adv.ActiveHints()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary:  %s serving %d hints (generation %d), journal at LSN %d\n",
		pts.URL, primary.Cache().Size(), primary.Cache().Generation(), journal.LastLSN())

	// --- Followers: bootstrap + live tail ---
	newFollower := func(name string) (*replicate.Follower, *httptest.Server) {
		f, err := replicate.Start(replicate.Config{
			Primary:          pts.URL,
			Catalog:          cat,
			Seed:             99,
			PollWait:         250 * time.Millisecond,
			ReconnectBackoff: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		ts := httptest.NewServer(f)
		fmt.Printf("%s: %s bootstrapped at LSN %d\n", name, ts.URL, f.Applied())
		return f, ts
	}
	f1, fts1 := newFollower("follower1")
	defer f1.Close()
	defer fts1.Close()
	f2, fts2 := newFollower("follower2")
	defer f2.Close()
	defer fts2.Close()

	// --- Cluster client: reads fan out, writes chase the leader ---
	// Deliberately list a follower first: the first write must discover
	// the real leader from the not_primary redirect.
	cc, err := client.NewCluster([]string{fts1.URL, pts.URL, fts2.URL})
	if err != nil {
		log.Fatal(err)
	}

	// Day N+1 under live serving: steer through the cluster, send the
	// rewards back — they land on the primary (redirect) and replicate
	// out to both followers through the journal.
	jobs, err := gen.JobsForDay(days + 1)
	if err != nil {
		log.Fatal(err)
	}
	_, view, err := prod.RunDay(days+1, jobs)
	if err != nil {
		log.Fatal(err)
	}
	feats, err := adv.FeatureGen.Run(jobs, view)
	if err != nil {
		log.Fatal(err)
	}
	batch := make([]api.RankRequest, 0, len(feats))
	for _, f := range feats {
		batch = append(batch, api.RankRequest{
			TemplateHash: api.TemplateHash(f.Job.Graph.TemplateHash()),
			TemplateID:   f.Job.Template.ID,
			Span:         f.Span.Bits(),
			RowCount:     f.RowCount,
			BytesRead:    f.BytesRead,
		})
	}
	// Ranks must come from the primary to produce reward-able events
	// (followers rank read-only); ask it directly, then push rewards
	// through the cluster to demonstrate the redirect.
	presp, err := client.New(pts.URL).RankBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	var events []api.RewardEvent
	hintHits := 0
	for _, res := range presp.Results {
		switch {
		case res.Error != nil:
		case res.EventID != "":
			v := 0.8
			events = append(events, api.RewardEvent{EventID: res.EventID, Reward: &v})
		default:
			hintHits++
		}
	}
	if len(events) > 0 {
		rresp, err := cc.RewardBatch(ctx, events) // first write: follower -> redirect -> leader
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cluster:  day %d steered (%d hint hits, %d bandit events); %d rewards queued via leader redirect (leader learned: %v)\n",
			days+1, hintHits, len(events), rresp.Queued, cc.Leader() == pts.URL)
	}

	// A fresh rollover while the followers tail live.
	adv.CB.Uniform = false
	var hintFile bytes.Buffer
	if err := sis.Serialize(&hintFile, sis.File{Day: days + 1, Hints: adv.ActiveHints()}); err != nil {
		log.Fatal(err)
	}
	install, err := cc.InstallHints(ctx, &hintFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollover: generation %d (%d hints) journaled and shipping\n", install.Generation, install.Installed)

	// --- Convergence proof ---
	primary.Ingestor().Drain()
	if err := journal.Sync(); err != nil {
		log.Fatal(err)
	}
	for i, f := range []*replicate.Follower{f1, f2} {
		if err := f.WaitCaughtUp(ctx, 10*time.Second); err != nil {
			log.Fatalf("follower%d: %v", i+1, err)
		}
	}

	hints, gen2 := primary.Cache().Export()
	convJobs := make([]api.RankRequest, 0, len(hints)*32)
	for _, h := range hints {
		for s := 0; s < 32; s++ {
			convJobs = append(convJobs, api.RankRequest{
				TemplateHash: api.TemplateHash(h.TemplateHash),
				Span:         []int{1 + s, 40 + s*2, 150 + s},
				RowCount:     float64(100 * (s + 1)),
			})
		}
	}
	body, err := json.Marshal(api.BatchRankRequest{Jobs: convJobs})
	if err != nil {
		log.Fatal(err)
	}
	ref := postPinned(pts.URL, body)
	for i, fts := range []*httptest.Server{fts1, fts2} {
		got := postPinned(fts.URL, body)
		if !bytes.Equal(ref, got) {
			log.Fatalf("follower%d /v2/rank responses diverged from primary\nprimary:  %s\nfollower: %s", i+1, ref, got)
		}
	}
	fmt.Printf("converge: %d-job rank stream byte-identical on all 3 nodes (generation %d)\n", len(convJobs), gen2)
	for i, f := range []*replicate.Follower{f1, f2} {
		if !bytes.Equal(modelBytes(primary), modelBytes(f.Server())) {
			log.Fatalf("follower%d model diverged from primary", i+1)
		}
		st := f.Stats()
		fmt.Printf("follower%d: applied LSN %d, lag %d, %d records applied, %d reconnects\n",
			i+1, st.AppliedLSN, st.LagRecords, st.RecordsApplied, st.Reconnects)
	}

	// --- Read scaling: one node vs the three-node rotation ---
	loadJobs := make([]api.RankRequest, 256)
	for i := range loadJobs {
		loadJobs[i] = api.RankRequest{
			TemplateHash: api.TemplateHash(0xbeef0000 + uint64(i%48)),
			Span:         []int{1 + i%40, 50 + i%60, 140 + i%40},
			RowCount:     float64(100 * (i + 1)),
		}
	}
	single, _ := client.NewCluster([]string{fts1.URL})
	const rounds = 40
	t1 := clusterThroughput(ctx, single, loadJobs, rounds)
	t3 := clusterThroughput(ctx, cc, loadJobs, rounds)
	fmt.Printf("scaling:  %d-job batches x%d — 1 node: %.0f ranks/s, 3-node rotation: %.0f ranks/s (%.2fx aggregate)\n",
		len(loadJobs), rounds, t1, t3, t3/t1)
	fmt.Println("          (all nodes share this process; on one CPU the rotation measures distribution overhead —")
	fmt.Println("           real read scaling comes from followers on their own machines, which is what -follow deploys)")
	fmt.Println("\nWAL-shipped replication: bootstrap + tail + redirect + convergence all proven over the wire.")
}

// postPinned POSTs a /v2/rank batch with a pinned request ID and
// returns the raw response bytes (request IDs are echoed, so equal
// inputs must produce equal bytes on converged nodes).
func postPinned(base string, body []byte) []byte {
	req, err := http.NewRequest(http.MethodPost, base+api.RouteV2Rank, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, "converge-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("rank on %s: status %d, err %v", base, resp.StatusCode, err)
	}
	return raw
}

// modelBytes renders a server's model with the watermark position
// neutralized (primary and follower sit at different covered LSNs by
// design; everything else must match byte for byte).
func modelBytes(s *serve.Server) []byte {
	var buf bytes.Buffer
	if err := s.Bandit().Save(&buf); err != nil {
		log.Fatal(err)
	}
	b := buf.Bytes()
	nl := bytes.IndexByte(b, '\n')
	head := b[:nl]
	if i := bytes.LastIndex(head, []byte(" wal=")); i >= 0 {
		head = head[:i]
	}
	return append(append([]byte{}, head...), b[nl:]...)
}

// clusterThroughput pushes the same batch through the given client
// repeatedly and reports ranks per second.
func clusterThroughput(ctx context.Context, cc *client.Cluster, jobs []api.RankRequest, rounds int) float64 {
	start := time.Now()
	total := 0
	for i := 0; i < rounds; i++ {
		resp, err := cc.RankBatch(ctx, jobs)
		if err != nil {
			log.Fatal(err)
		}
		total += len(resp.Results)
	}
	return float64(total) / time.Since(start).Seconds()
}
