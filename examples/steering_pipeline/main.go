// Steering pipeline: the full production loop over a multi-day recurring
// workload. Each simulated day, production runs every job under the
// currently installed hints, then the offline QO-Advisor pipeline
// processes the day's telemetry and uploads new validated hints to the
// Stats & Insight Service — the Figure 1 loop of the paper, end to end.
package main

import (
	"fmt"
	"log"

	"qoadvisor/internal/core"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/workload"
)

func main() {
	const days = 8
	gen, err := workload.New(workload.Config{Seed: 7, NumTemplates: 30, MaxDailyInstances: 2})
	if err != nil {
		log.Fatal(err)
	}
	cat := rules.NewCatalog()
	cluster := exec.DefaultCluster(7)
	store := sis.NewStore(cat)
	adv := core.NewAdvisor(cat, store, core.Config{
		Seed:      7,
		Flighting: flighting.Config{Catalog: cat, Cluster: cluster, Seed: 12},
	})
	prod := core.NewProduction(cat, store, cluster, 19)

	fmt.Printf("%-4s %-8s %-10s %-9s %-8s %-6s\n", "day", "jobs", "steerable", "flighted", "valid", "hints")
	for day := 1; day <= days; day++ {
		adv.CB.Uniform = day <= 2 // uniform logging first, learned policy after

		jobs, err := gen.JobsForDay(day)
		if err != nil {
			log.Fatal(err)
		}
		runs, view, err := prod.RunDay(day, jobs)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := adv.RunDay(day, jobs, view)
		if err != nil {
			log.Fatal(err)
		}
		hinted := 0
		for _, r := range runs {
			if r.Hinted {
				hinted++
			}
		}
		fmt.Printf("%-4d %-8d %-10d %-9d %-8d %-6d   (%d jobs ran hinted)\n",
			day, rep.JobsInView, rep.JobsWithSpan, rep.FlightsRequested,
			rep.Validated, rep.HintsUploaded, hinted)
	}

	// Show the final hint file the way SIS stores it.
	hist := store.History()
	if len(hist) == 0 || len(hist[len(hist)-1].Hints) == 0 {
		fmt.Println("\nNo hints survived validation in this short run — try more days.")
		return
	}
	fmt.Println("\nActive hints (template -> single rule flip):")
	for _, h := range hist[len(hist)-1].Hints {
		r := cat.Rule(h.Flip.RuleID)
		fmt.Printf("  %s (%016x): %s  [%s, %s] installed day %d\n",
			h.TemplateID, h.TemplateHash, h.Flip, r.Name, r.Category, h.Day)
	}
}
