// Steering pipeline: the full production loop over a multi-day recurring
// workload. Each simulated day, production runs every job under the
// currently installed hints, then the offline QO-Advisor pipeline
// processes the day's telemetry and uploads new validated hints to the
// Stats & Insight Service — the Figure 1 loop of the paper, end to end.
//
// The final section closes the deployment loop over the wire: the
// trained bandit and validated hint table are served by the online
// steering service (internal/serve), the hint file is rolled over via
// POST /v1/hints, and the next day's jobs are steered through the
// versioned batch protocol with the typed client
// (qoadvisor/internal/api/client) — cache hits for hinted templates,
// bandit decisions for the rest, and batched reward telemetry back.
// The served leg runs durably: rank decisions and reward batches are
// journaled to a write-ahead log, a checkpoint snapshots the model
// with its covering WAL offset, and the example finishes by proving
// the crash-recovery contract — a model rebuilt from snapshot +
// journal suffix is byte-identical to the live one.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/core"
	"qoadvisor/internal/exec"
	"qoadvisor/internal/flighting"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
	"qoadvisor/internal/workload"
)

func main() {
	const days = 8
	gen, err := workload.New(workload.Config{Seed: 7, NumTemplates: 30, MaxDailyInstances: 2})
	if err != nil {
		log.Fatal(err)
	}
	cat := rules.NewCatalog()
	cluster := exec.DefaultCluster(7)
	store := sis.NewStore(cat)
	adv := core.NewAdvisor(cat, store, core.Config{
		Seed:      7,
		Flighting: flighting.Config{Catalog: cat, Cluster: cluster, Seed: 12},
	})
	prod := core.NewProduction(cat, store, cluster, 19)

	fmt.Printf("%-4s %-8s %-10s %-9s %-8s %-6s\n", "day", "jobs", "steerable", "flighted", "valid", "hints")
	for day := 1; day <= days; day++ {
		adv.CB.Uniform = day <= 2 // uniform logging first, learned policy after

		jobs, err := gen.JobsForDay(day)
		if err != nil {
			log.Fatal(err)
		}
		runs, view, err := prod.RunDay(day, jobs)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := adv.RunDay(day, jobs, view)
		if err != nil {
			log.Fatal(err)
		}
		hinted := 0
		for _, r := range runs {
			if r.Hinted {
				hinted++
			}
		}
		fmt.Printf("%-4d %-8d %-10d %-9d %-8d %-6d   (%d jobs ran hinted)\n",
			day, rep.JobsInView, rep.JobsWithSpan, rep.FlightsRequested,
			rep.Validated, rep.HintsUploaded, hinted)
	}

	// Show the final hint file the way SIS stores it.
	hist := store.History()
	if len(hist) == 0 || len(hist[len(hist)-1].Hints) == 0 {
		fmt.Println("\nNo hints survived validation in this short run — try more days.")
		return
	}
	final := hist[len(hist)-1]
	fmt.Println("\nActive hints (template -> single rule flip):")
	for _, h := range final.Hints {
		r := cat.Rule(h.Flip.RuleID)
		fmt.Printf("  %s (%016x): %s  [%s, %s] installed day %d\n",
			h.TemplateID, h.TemplateHash, h.Flip, r.Name, r.Category, h.Day)
	}

	// --- Serve the result online and steer the next day over the wire ---

	walDir, err := os.MkdirTemp("", "qoadvisor-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	journal, err := wal.Open(wal.Options{Dir: walDir, Mode: wal.ModeAsync})
	if err != nil {
		log.Fatal(err)
	}
	defer journal.Close()
	srv := serve.New(serve.Config{Catalog: cat, Bandit: adv.CB.Service, Seed: 7, WAL: journal})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()

	// Pipeline rollover over HTTP: serialize the SIS file and push it
	// through the typed client, exactly as qoserved -push-hints would.
	var hintFile bytes.Buffer
	if err := sis.Serialize(&hintFile, final); err != nil {
		log.Fatal(err)
	}
	install, err := cl.InstallHints(ctx, &hintFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nServing: rolled %d hints (day %d) into generation %d at %s\n",
		install.Installed, install.Day, install.Generation, ts.URL)

	// Compile day N+1 against the server: run production to get the
	// day's telemetry view, featurize it (spans, input-stream stats),
	// and steer every job in one /v2/rank batch instead of a round trip
	// per job.
	jobs, err := gen.JobsForDay(days + 1)
	if err != nil {
		log.Fatal(err)
	}
	_, view, err := prod.RunDay(days+1, jobs)
	if err != nil {
		log.Fatal(err)
	}
	feats, err := adv.FeatureGen.Run(jobs, view)
	if err != nil {
		log.Fatal(err)
	}
	batch := make([]api.RankRequest, 0, len(feats))
	for _, f := range feats {
		batch = append(batch, api.RankRequest{
			TemplateHash: api.TemplateHash(f.Job.Graph.TemplateHash()),
			TemplateID:   f.Job.Template.ID,
			Span:         f.Span.Bits(),
			RowCount:     f.RowCount,
			BytesRead:    f.BytesRead,
		})
	}
	resp, err := cl.RankBatch(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}

	var hintHits, banditRanks, skipped int
	reward := 1.0
	var events []api.RewardEvent
	for _, res := range resp.Results {
		switch {
		case res.Error != nil:
			// Not steerable (the protocol rejects per job without
			// voiding the batch).
			skipped++
		case res.Source == api.SourceHint:
			hintHits++
		default:
			banditRanks++
			// Pretend the flip ran well: batch the telemetry back.
			events = append(events, api.RewardEvent{EventID: res.EventID, Reward: &reward})
		}
	}
	fmt.Printf("Day %d over the wire: %d jobs ranked in one batch -> %d hint hits, %d bandit decisions, %d unsteerable\n",
		days+1, len(batch), hintHits, banditRanks, skipped)

	if len(events) > 0 {
		rb, err := cl.RewardBatch(ctx, events)
		if err != nil {
			log.Fatal(err)
		}
		srv.Ingestor().Drain()
		fmt.Printf("Telemetry: %d rewards queued in one batch (%d rejected)\n", rb.Queued, len(rb.Rejected))
	}

	health, err := cl.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Server: %s generation %d, %d hints; %d ranks (%d from cache), %d rewards applied\n",
		health.Status, health.Generation, health.Hints,
		stats.RankRequests, stats.HintHits, stats.Ingest.Applied)
	if stats.WAL != nil {
		fmt.Printf("Journal: mode=%s, %d records (%d bytes) across %d segments\n",
			stats.WAL.Mode, stats.WAL.LastLSN, stats.WAL.AppendedBytes, stats.WAL.Segments)
	}

	// --- Crash recovery: the durability contract, proven ---
	//
	// Checkpoint the served model (quiesce, train-flush, snapshot with
	// the covering WAL offset), then rebuild a model the way a crashed
	// process would on restart — snapshot + journal suffix — and check
	// it is byte-identical to the live learner's persisted form.
	snapPath := filepath.Join(walDir, "model.snap")
	ckpt, err := srv.Checkpoint(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Checkpoint: %d bytes at WAL offset %d in %v (%d segments compacted)\n",
		ckpt.Bytes, ckpt.LSN, ckpt.Duration.Round(time.Microsecond), ckpt.SegmentsRemoved)

	var live bytes.Buffer
	if err := srv.SnapshotTo(&live); err != nil {
		log.Fatal(err)
	}
	rec, err := serve.Recover(wal.DirSource{Dir: walDir}, snapPath, 0, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	var rebuilt bytes.Buffer
	if err := rec.Service.Save(&rebuilt); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(live.Bytes(), rebuilt.Bytes()) {
		fmt.Printf("Recovery: snapshot + %d-record journal suffix rebuilt the model byte-identically (%d bytes)\n",
			rec.Journal.Records, rebuilt.Len())
	} else {
		log.Fatalf("recovery mismatch: live %d bytes, rebuilt %d bytes", live.Len(), rebuilt.Len())
	}
}
