// Variance study: reproduce the paper's §5.1 A/A finding interactively —
// re-running identical jobs on the simulated cluster shows high latency
// variance (stragglers, queueing, hiccups) but bounded PNhours variance
// (data volumes are deterministic), which is why QO-Advisor optimizes and
// validates on PNhours.
package main

import (
	"fmt"
	"log"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/stats"
	"qoadvisor/internal/workload"
)

func main() {
	const aaRuns = 12
	gen, err := workload.New(workload.Config{Seed: 3, NumTemplates: 12})
	if err != nil {
		log.Fatal(err)
	}
	cat := rules.NewCatalog()
	cluster := exec.DefaultCluster(3)

	fmt.Printf("A/A study: each job runs %d times under identical inputs and plans.\n\n", aaRuns)
	fmt.Printf("%-22s %12s %12s %14s %14s\n", "job", "latency CV", "PNhours CV", "read spread", "written spread")

	var latCVs, pnCVs []float64
	for _, tpl := range gen.Templates() {
		job, err := tpl.Instantiate(1, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := optimizer.Optimize(job.Graph, cat.DefaultConfig(),
			optimizer.Options{Catalog: cat, Stats: job.Stats, Tokens: job.Tokens})
		if err != nil {
			log.Fatal(err)
		}
		runs := exec.RunN(res.Plan, job.Truth, job.Stats, cluster, 100, aaRuns)
		var lat, pn, rd, wr []float64
		for _, m := range runs {
			lat = append(lat, m.LatencySec)
			pn = append(pn, m.PNHours)
			rd = append(rd, m.DataRead)
			wr = append(wr, m.DataWritten)
		}
		latCV := stats.CoefficientOfVariation(lat)
		pnCV := stats.CoefficientOfVariation(pn)
		latCVs = append(latCVs, latCV)
		pnCVs = append(pnCVs, pnCV)
		fmt.Printf("%-22s %11.1f%% %11.1f%% %14s %14s\n",
			job.ID, latCV*100, pnCV*100,
			spread(rd), spread(wr))
	}

	fmt.Printf("\njobs above 5%% latency variance: %.0f%%   (paper: >90%%)\n",
		stats.FractionAbove(latCVs, 0.05)*100)
	fmt.Printf("jobs above 5%% PNhours variance: %.0f%%   (paper: <50%%)\n",
		stats.FractionAbove(pnCVs, 0.05)*100)
	fmt.Println("\nDataRead/DataWritten are identical across runs — the foundation of")
	fmt.Println("QO-Advisor's validation model (§4.3).")
}

// spread renders max-min of a sample; "0" proves run-invariance.
func spread(xs []float64) string {
	d := stats.Max(xs) - stats.Min(xs)
	if d == 0 {
		return "0 (exact)"
	}
	return fmt.Sprintf("%.0f", d)
}
