// Steering drift: the online drift safeguard end to end — a scripted
// reward regression on one hinted template drives the full quarantine
// lifecycle while the rest of the workload keeps serving.
//
// A WAL-backed primary serves a two-template hint table with drift
// detection enabled. Production telemetry is simulated with the drift
// package's flood generator: both templates report healthy rewards
// until one of them collapses (the signature of a hint that went stale
// under data drift — the paper's §7 regression risk). The safeguard's
// per-template sketch statistics flag the collapse, hysteresis
// confirms it, and the template is auto-quarantined: its ranks fall
// back to the bandit path while the healthy template's hint keeps
// serving. Every transition is journaled (RecQuarantine), so the
// example then "crashes" the primary and rebuilds it from snapshot +
// journal to show the quarantine survives restart. Finally the
// regressed telemetry recovers, the template walks through probation
// back to healthy, and the hint serves again.
//
// Timeline printed by the example:
//
//	phase 1  healthy baseline     both templates serve from hints
//	phase 2  regression + flood   template A auto-quarantined, B unaffected
//	phase 3  crash + recovery     replayed server still refuses A's hint
//	phase 4  recovery + restore   A walks quarantined -> probation -> healthy
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	"qoadvisor/internal/api"
	"qoadvisor/internal/api/client"
	"qoadvisor/internal/drift"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/serve"
	"qoadvisor/internal/sis"
	"qoadvisor/internal/wal"
)

const (
	tmplA = uint64(0xa11ce) // the template whose hint goes stale
	tmplB = uint64(0xb0b)   // the healthy control
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "steering-drift-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "model.snap")

	// --- Primary: WAL-backed, drift detection on ---
	// Small hysteresis windows so the lifecycle fits in an example run;
	// production defaults confirm over 16 consecutive degraded
	// observations (see README "Safeguards" for tuning).
	j, err := wal.Open(wal.Options{Dir: dir, Mode: wal.ModeSync})
	if err != nil {
		log.Fatal(err)
	}
	cat := rules.NewCatalog()
	srv := serve.New(serve.Config{
		Catalog: cat, Seed: 42, QueueSize: 1024, WAL: j,
		Drift: &drift.Config{MinSamples: 16, QuarantineAfter: 8, ProbationAfter: 8, RestoreAfter: 16},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL)

	if _, err := srv.InstallHints([]sis.Hint{
		{TemplateHash: tmplA, TemplateID: "T-A", Flip: cat.FlipFor(40), Day: 7},
		{TemplateHash: tmplB, TemplateID: "T-B", Flip: cat.FlipFor(55), Day: 7},
	}); err != nil {
		log.Fatal(err)
	}

	// --- Phase 1: healthy baseline ---
	fmt.Println("== phase 1: healthy baseline ==")
	floodA := drift.NewFlood(1, 1.0, 0.05) // template A's reward stream
	floodB := drift.NewFlood(2, 0.8, 0.05) // template B's reward stream
	observe(ctx, cl, tmplA, floodA.Batch(64))
	observe(ctx, cl, tmplB, floodB.Batch(64))
	fmt.Printf("rank A -> %s, rank B -> %s\n", source(ctx, cl, tmplA), source(ctx, cl, tmplB))

	// --- Phase 2: regression flood on A ---
	fmt.Println("\n== phase 2: reward collapse on template A ==")
	floodA.Shift(0.0) // A's hint went stale: rewards collapse
	n := 0
	for !srv.QuarantineTable().Blocked(tmplA) {
		observe(ctx, cl, tmplA, floodA.Batch(8))
		observe(ctx, cl, tmplB, floodB.Batch(8)) // B keeps reporting healthy
		n += 8
	}
	fmt.Printf("auto-quarantined A after %d degraded observations\n", n)
	fmt.Printf("rank A -> %s (hint refused), rank B -> %s (unaffected)\n",
		source(ctx, cl, tmplA), source(ctx, cl, tmplB))
	printTable(ctx, cl)

	// --- Phase 3: crash and recover ---
	fmt.Println("\n== phase 3: crash, replay snapshot + journal ==")
	rec, err := serve.Recover(wal.DirSource{Dir: dir}, snap, 0, 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	srv2 := serve.New(serve.Config{Catalog: cat, Seed: 42, Bandit: rec.Service})
	defer srv2.Close()
	if _, err := srv2.InstallHints([]sis.Hint{
		{TemplateHash: tmplA, TemplateID: "T-A", Flip: cat.FlipFor(40), Day: 7},
		{TemplateHash: tmplB, TemplateID: "T-B", Flip: cat.FlipFor(55), Day: 7},
	}); err != nil {
		log.Fatal(err)
	}
	srv2.RestoreQuarantines(rec.Quarantine)
	respA, err := srv2.Rank(api.RankRequest{TemplateHash: api.TemplateHash(tmplA), Span: []int{5, 60}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d quarantine records; recovered server ranks A -> %s\n",
		rec.QuarantineRecords, respA.Source)
	if respA.Source != api.SourceBandit {
		log.Fatal("BUG: recovery lost the quarantine")
	}

	// --- Phase 4: telemetry recovers, probation, restore ---
	fmt.Println("\n== phase 4: rewards recover, probation, restore ==")
	floodA.Shift(1.0)
	n = 0
	for srv.QuarantineTable().StateOf(tmplA) != drift.StateProbation {
		observe(ctx, cl, tmplA, floodA.Batch(8))
		n += 8
	}
	fmt.Printf("probation after %d recovered observations (hint serves tentatively: rank A -> %s)\n",
		n, source(ctx, cl, tmplA))
	for srv.QuarantineTable().StateOf(tmplA) != drift.StateHealthy {
		observe(ctx, cl, tmplA, floodA.Batch(8))
		n += 8
	}
	fmt.Printf("fully restored after %d recovered observations\n", n)
	printTable(ctx, cl)

	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	d := st.Drift
	fmt.Printf("\nlifecycle totals: %d transitions (%d quarantines, %d probations, %d restores), %d blocked ranks\n",
		d.Transitions, d.Quarantines, d.Probations, d.Restores, d.BlockedRanks)
}

// observe reports one template's reward batch as attributed telemetry
// (templateHash, no eventId — pure drift observations).
func observe(ctx context.Context, cl *client.Client, hash uint64, rewards []float64) {
	events := make([]api.RewardEvent, len(rewards))
	for i, v := range rewards {
		v := v
		th := api.TemplateHash(hash)
		events[i] = api.RewardEvent{TemplateHash: &th, Reward: &v}
	}
	if _, err := cl.RewardBatch(ctx, events); err != nil {
		log.Fatal(err)
	}
}

// source ranks one job for the template and returns which path served.
func source(ctx context.Context, cl *client.Client, hash uint64) string {
	resp, err := cl.Rank(ctx, api.RankRequest{TemplateHash: api.TemplateHash(hash), Span: []int{5, 60}})
	if err != nil {
		log.Fatal(err)
	}
	return resp.Source
}

// printTable dumps the admin view (GET /v2/quarantine).
func printTable(ctx context.Context, cl *client.Client) {
	list, err := cl.QuarantineList(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if len(list.Templates) == 0 {
		fmt.Println("quarantine table: empty")
		return
	}
	for _, t := range list.Templates {
		fmt.Printf("quarantine table: %016x %s\n", uint64(t.TemplateHash), t.State)
	}
}
