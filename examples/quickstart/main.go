// Quickstart: compile one SCOPE script, steer it with a single rule flip,
// and compare the default and steered plans — the smallest end-to-end
// demonstration of the steering surface QO-Advisor operates on.
package main

import (
	"fmt"
	"log"

	"qoadvisor/internal/exec"
	"qoadvisor/internal/optimizer"
	"qoadvisor/internal/rules"
	"qoadvisor/internal/scope"
	"qoadvisor/internal/span"
)

const script = `
orders = EXTRACT oid:long, customer:long, amount:double, day:int FROM "store/orders.tsv";
big = SELECT oid, customer, amount FROM orders WHERE amount > 1000 AND day >= 20;
byCustomer = SELECT customer, SUM(amount) AS total, COUNT(*) AS cnt
             FROM big GROUP BY customer
             ORDER BY total DESC TOP 50;
OUTPUT byCustomer TO "out/top_customers.tsv";
`

func main() {
	// 1. Compile the script into a logical operator DAG.
	graph, err := scope.CompileScript(script)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Logical plan:")
	fmt.Print(graph)

	// 2. Optimize under the default 256-rule configuration.
	cat := rules.NewCatalog()
	stats := optimizer.MapStats{
		"store/orders.tsv": {Rows: 2e6, NDV: map[string]float64{
			"oid": 2e6, "customer": 5e4, "amount": 1e4, "day": 30,
		}},
	}
	opts := optimizer.Options{Catalog: cat, Stats: stats}
	base, err := optimizer.Optimize(graph, cat.DefaultConfig(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDefault plan estimated cost: %.4g (%d rules fired)\n",
		base.EstCost, base.Signature.Count())

	// 3. Compute the job span: the rules that can steer this plan.
	sp, err := span.Compute(graph, cat, span.Options{Optimizer: opts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Job span: %d plan-affecting rules\n", sp.Span.Count())

	// 4. Try every single-rule flip in the span and keep the best.
	truth := &exec.Truth{
		Rows:       map[string]float64{"store/orders.tsv": 2.6e6},
		Sel:        map[string]float64{"filter:(amount > 1000)": 0.08, "filter:(day >= 20)": 0.35, "agg:customer": 0.02},
		JitterSeed: 1,
	}
	cluster := exec.DefaultCluster(7)
	baseMetrics := exec.Run(base.Plan, truth, stats, cluster, 1)

	var bestFlip rules.Flip
	var bestPN = baseMetrics.PNHours
	for _, id := range sp.Span.Bits() {
		flip := cat.FlipFor(id)
		res, err := optimizer.Optimize(graph, cat.DefaultConfig().WithFlip(flip), opts)
		if err != nil {
			continue // some flips legitimately fail to compile
		}
		m := exec.Run(res.Plan, truth, stats, cluster, 2)
		if m.PNHours < bestPN {
			bestPN = m.PNHours
			bestFlip = flip
		}
	}

	fmt.Printf("\nDefault execution:  PNhours %.4f, latency %.1fs, vertices %d\n",
		baseMetrics.PNHours, baseMetrics.LatencySec, baseMetrics.Vertices)
	if bestPN < baseMetrics.PNHours {
		r := cat.Rule(bestFlip.RuleID)
		fmt.Printf("Best single flip:   %s (%s, %s)\n", bestFlip, r.Name, r.Category)
		fmt.Printf("Steered PNhours:    %.4f (%.1f%% change)\n",
			bestPN, 100*(bestPN/baseMetrics.PNHours-1))
	} else {
		fmt.Println("No single flip improved this job — the default plan wins here.")
	}
}
