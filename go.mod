module qoadvisor

go 1.24
